// Numerical-health watchdog: structured warnings for the failure modes the
// paper's section 8 analyzes.
//
// The Schur recursion degrades in recognizable ways before it breaks: a
// pivot's hyperbolic norm collapses toward zero (near-singular principal
// minor), the hyperbolic rotation parameter |q/p| approaches 1 (unbounded
// reflector norm -- the classic-Schur view of the same event), the
// generator grows far beyond its initial norm, or iterative refinement
// stalls short of convergence.  The watchdog turns each of these into a
// structured Warning that lands in the perf report's "warnings" section and
// (when the flight recorder is on) as an instant marker on the timeline, so
// a collapsing run is diagnosable from its artifacts alone.
//
// Checks are gated on Tracer::enabled() -- like the rest of the
// observability layer they cost one relaxed load + branch while off.  The
// thresholds are process-global and mutable (limits()); the defaults are
// deliberately loose so warnings mean "look at this run", not noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bst::util {

/// Mutable process-global thresholds (see docs/OBSERVABILITY.md).
struct WatchdogLimits {
  /// |min hyperbolic norm| below this flags a near-singular minor
  /// ("near_singular_minor").  The blocked paths record sigma^2, so this is
  /// compared against sigma^2, not sigma.
  double hnorm_tol = 1e-10;
  /// max |generator entry| beyond `max_growth * norm_g1` flags generator
  /// blowup ("generator_growth").
  double max_growth = 1e8;
  /// |q/p| (the scalar hyperbolic rotation parameter) above this flags a
  /// near-unit rotation ("hyperbolic_rotation_near_1"): the applied
  /// rotation's norm ~ sqrt((1+r)/(1-r)) is blowing up.
  double max_reflection = 1.0 - 1e-6;
  /// Warnings kept verbatim; beyond this only the drop count grows.
  std::size_t max_warnings = 4096;
};

/// One structured warning.
struct Warning {
  std::string code;        // stable identifier, e.g. "near_singular_minor"
  std::int64_t step = 0;   // Schur/refinement step it fired on
  double value = 0.0;      // observed quantity
  double threshold = 0.0;  // limit it crossed
};

class Watchdog {
 public:
  /// The process-global thresholds (mutate before a run to tighten/loosen).
  static WatchdogLimits& limits();

  /// Records one warning.  The structured log and the flight-recorder
  /// instant event ("warn:<code>") are gated on Tracer::enabled(); the
  /// `watchdog_warnings` Metrics counter is bumped unconditionally so live
  /// services see health events without a profiled run watching.
  static void warn(const std::string& code, std::int64_t step, double value,
                   double threshold);

  /// Per-step health check used by every factorization driver: flags
  /// near-singular minors and generator growth (norm_ref <= 0 skips the
  /// growth check, for scalar baselines with no generator).
  static void check_step(std::int64_t step, double min_hnorm, double max_generator,
                         double norm_ref);

  /// Flags a near-unit scalar hyperbolic rotation (|q/p| -> 1).
  static void check_reflection(std::int64_t step, double reflection);

  /// Refinement-health check: flags a stalled correction sequence
  /// ("refine_stall", ratio = |dx_k|/|dx_{k-1}|) and non-convergence at the
  /// iteration cap ("refine_no_convergence").
  static void check_refine(std::int64_t iterations, bool converged, double stall_ratio);

  /// PCG-health check: flags a diverging residual sequence
  /// ("pcg_divergence", ratio = |r_k|/min_j |r_j|) and non-convergence at
  /// the iteration cap ("pcg_no_convergence").
  static void check_pcg(std::int64_t iterations, bool converged, double divergence_ratio);

  /// Copies out the recorded warnings (order of arrival).
  static std::vector<Warning> snapshot();

  /// Warnings recorded since reset, including any dropped past
  /// limits().max_warnings.
  static std::uint64_t total();

  /// Drops all recorded warnings (limits are preserved).
  static void reset();
};

}  // namespace bst::util
