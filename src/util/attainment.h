// Model-attainment joins: reconcile measured per-phase flops/bytes/seconds
// (util/trace.h, surfaced through the report's "phases" section) with the
// paper's analytic flop models (core/flop_model.h) and a calibrated machine
// profile (util/calibrate.h).
//
// The paper argues representation choices through eqs. 25-32 and achieved
// MFLOP/s plots (figs. 6-10); this module is the missing reconciliation:
// for every traced phase it derives
//
//   gflops        achieved rate (measured flops / seconds)
//   intensity     arithmetic intensity (measured flops / bytes)
//   ceiling       roofline ceiling = min(peak, intensity x bandwidth)
//   attainment    gflops / ceiling (how much of the machine the phase got)
//   model_ratio   measured flops / as-implemented model flops (~1.0 unless
//                 the kernels drift from their cost model)
//   paper_ratio   measured flops / verbatim eq. 25-32 model flops (the
//                 idealization gap the paper's models leave out)
//
// plus the run-level observability self-overhead (span count x calibrated
// ns/span vs makespan) and the run's backward error, so accuracy and speed
// regress-gate together.  The result is the additive "attainment" report
// section (schema stays v1; see docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <vector>

#include "util/report.h"

namespace bst::util {

/// Modeled flop budget for one traced phase.  `model_flops` is the
/// as-implemented cost model (what the kernels charge by construction, so
/// measured/model ~ 1.0 is a real invariant); `paper_flops` is the verbatim
/// eq. 25-32 model (informational: the paper's idealized counts).
struct PhaseModel {
  std::string phase;
  double model_flops = 0.0;
  double paper_flops = 0.0;
};

/// Computes the "attainment" section from a built report document
/// (PerfReport::build()), an optional calibration profile (the Json form of
/// util::Calibration; pass nullptr when uncalibrated -- roofline ceilings,
/// attainment fractions and the observability-overhead budget are then
/// omitted) and optional per-phase flop models.  Pure function of its
/// inputs so tests can pin exact numbers.
Json attainment_section(const Json& report_doc, const Json* calibration,
                        const std::vector<PhaseModel>& models = {});

}  // namespace bst::util
