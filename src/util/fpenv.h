// Floating point environment helpers.
#pragma once

#include <cfenv>

namespace bst::util {

/// Enables flush-to-zero and denormals-are-zero on x86 (no-op elsewhere).
/// Toeplitz matrices with geometrically decaying symbols (e.g. KMS with
/// rho^k entries) underflow into denormals at large n, and denormal
/// arithmetic is ~100x slower on most CPUs; every bench enables this, as
/// any HPC production build would.
void enable_flush_to_zero() noexcept;

/// RAII scope that turns the given FP exceptions (FE_DIVBYZERO | FE_INVALID
/// | FE_OVERFLOW ...) into SIGFPE traps for debugging, restoring the
/// previous trap mask exactly on destruction.  Scopes nest: an inner scope
/// adding FE_INVALID on top of an outer FE_DIVBYZERO leaves both armed
/// until the inner scope ends, then just the outer one, then none --
/// whatever was armed before the outer scope.  Pending exception flags for
/// the requested traps are cleared first so stale flags cannot fire
/// spuriously on enable.
///
/// Trap control (feenableexcept) is a glibc extension: supported() says
/// whether this build has it; elsewhere the scope is a no-op and
/// enabled_traps() returns -1.  Not async-signal-safe; not for use inside
/// kernels (a trap mask flip serializes the pipeline) -- this is a debug
/// tool for chasing the NaN/Inf origins the watchdog reports.
class FpTrapScope {
 public:
  explicit FpTrapScope(int excepts) noexcept;
  ~FpTrapScope();
  FpTrapScope(const FpTrapScope&) = delete;
  FpTrapScope& operator=(const FpTrapScope&) = delete;

  /// True when this build can flip trap masks (glibc).
  [[nodiscard]] static bool supported() noexcept;

  /// Currently armed trap mask (FE_* bits), or -1 when unsupported.
  [[nodiscard]] static int enabled_traps() noexcept;

 private:
  int prev_mask_ = -1;  // trap mask before this scope; -1 = unsupported
};

}  // namespace bst::util
