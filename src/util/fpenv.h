// Floating point environment helpers.
#pragma once

namespace bst::util {

/// Enables flush-to-zero and denormals-are-zero on x86 (no-op elsewhere).
/// Toeplitz matrices with geometrically decaying symbols (e.g. KMS with
/// rho^k entries) underflow into denormals at large n, and denormal
/// arithmetic is ~100x slower on most CPUs; every bench enables this, as
/// any HPC production build would.
void enable_flush_to_zero() noexcept;

}  // namespace bst::util
