#include "util/prof.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "util/metrics.h"

#if defined(__linux__)
#define BST_HAVE_PROF 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <csignal>
#endif

namespace bst::util {
namespace {

// ---------------------------------------------------------------------------
// Counter layout shared by the perf groups and the per-phase accumulators.
// ---------------------------------------------------------------------------

enum Ctr : int {
  kCycles = 0,
  kInstructions,
  kStalledCycles,
  kBranchMisses,
  kL1dLoads,
  kL1dMisses,
  kLlcLoads,
  kLlcMisses,
  kNumCtr
};

// PMU availability, resolved once by the first thread that tries to open a
// counter group: 0 = not attempted, 1 = ok, 2 = unavailable, 3 = disabled
// by options (BST_PROF_PMU=0), 4 = never requested.
std::atomic<int> g_pmu_state{4};
char g_pmu_err[160] = {0};
std::mutex g_pmu_err_mu;

std::atomic<bool> g_armed{false};
std::atomic<bool> g_was_armed{false};
std::atomic<bool> g_pmu_wanted{false};
std::atomic<std::uint64_t> g_pmu_threads{0};  // threads with open groups

// Per-phase accumulated hardware deltas, parallel to the Tracer's slots.
struct alignas(64) PmuSlot {
  std::atomic<std::uint64_t> spans{0};
  std::atomic<std::uint64_t> v[kNumCtr]{};
};
PmuSlot g_pmu_slots[Tracer::kMaxPhases];

// Process-wide running totals feeding the live telemetry gauges.
std::atomic<std::uint64_t> g_pmu_total[kNumCtr]{};
std::atomic<int> g_gauge_ipc{-1};
std::atomic<int> g_gauge_llc{-1};

// ---------------------------------------------------------------------------
// Per-thread span stack: who is on-CPU right now, for both the PMU deltas
// and the sampler's phase attribution.  The signal handler reads it, so
// writes are ordered with atomic_signal_fence: the frame is fully written
// before the depth that exposes it, and the depth retreats before a frame
// is reused.
// ---------------------------------------------------------------------------

struct SpanFrame {
  PhaseId id = -1;
  bool have_pmu = false;
  PmuCounts c0;
};

thread_local SpanFrame t_frames[Prof::kMaxSpanDepth];
thread_local int t_depth = 0;
thread_local std::uint64_t t_req = 0;

#if defined(BST_HAVE_PROF)

// ---------------------------------------------------------------------------
// perf_event groups.  Two per thread: "core" (leader: cycles) and "mem"
// (leader: L1d read accesses), read in one syscall each via
// PERF_FORMAT_GROUP.  Sibling events that fail to open (odd PMUs, missing
// generic cache events) are skipped individually; only a core-leader
// failure marks the PMU unavailable.
// ---------------------------------------------------------------------------

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  int ctr;  // Ctr slot the reading lands in
};

constexpr std::uint64_t hw_cache(std::uint64_t id, std::uint64_t op, std::uint64_t result) {
  return id | (op << 8) | (result << 16);
}

const EventSpec kCoreEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, kInstructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND, kStalledCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, kBranchMisses},
};
const EventSpec kMemEvents[] = {
    {PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_ACCESS),
     kL1dLoads},
    {PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS),
     kL1dMisses},
    {PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_ACCESS),
     kLlcLoads},
    {PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS),
     kLlcMisses},
};

constexpr int kMaxGroupEvents = 4;

struct PerfGroup {
  int leader = -1;
  int n = 0;               // events actually opened (including the leader)
  int ctr[kMaxGroupEvents] = {-1, -1, -1, -1};  // reading index -> Ctr slot

  void close_all() noexcept {
    // Siblings share the leader's lifetime from the kernel's point of view,
    // but we hold one fd per event; the leader's fd is fds[0].
    for (int i = 0; i < n; ++i) {
      if (fds[i] >= 0) ::close(fds[i]);
      fds[i] = -1;
    }
    leader = -1;
    n = 0;
  }
  int fds[kMaxGroupEvents] = {-1, -1, -1, -1};
};

long perf_open(const EventSpec& ev, int group_fd) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = ev.type;
  attr.config = ev.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, wherever it runs.
  return ::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
}

struct PmuThread {
  PerfGroup core;
  PerfGroup mem;
  bool opened = false;  // open was attempted (success or not)
  bool ok = false;      // the core group is live
  ~PmuThread() {
    core.close_all();
    mem.close_all();
    if (ok) g_pmu_threads.fetch_sub(1, std::memory_order_relaxed);
    ok = false;
  }
};

thread_local PmuThread t_pmu;

void note_pmu_unavailable(int err) noexcept {
  int expected = 0;
  if (g_pmu_state.compare_exchange_strong(expected, 2, std::memory_order_relaxed) ||
      expected == 2) {
    std::lock_guard lock(g_pmu_err_mu);
    if (g_pmu_err[0] == 0) {
      std::snprintf(g_pmu_err, sizeof(g_pmu_err),
                    "unavailable: perf_event_open failed (%s); "
                    "check kernel.perf_event_paranoid / container seccomp",
                    std::strerror(err));
    }
  }
}

bool open_group(PerfGroup& g, const EventSpec* evs, int n_evs) noexcept {
  for (int i = 0; i < n_evs; ++i) {
    const long fd = perf_open(evs[i], g.leader);
    if (fd < 0) {
      if (i == 0) return false;  // leader failed: no group at all
      continue;                  // sibling failed: measure what we can
    }
    if (i == 0) g.leader = static_cast<int>(fd);
    g.fds[g.n] = static_cast<int>(fd);
    g.ctr[g.n] = evs[i].ctr;
    ++g.n;
  }
  return g.n > 0;
}

/// Lazily opens this thread's groups.  Returns t_pmu.ok.
bool ensure_open() noexcept {
  if (t_pmu.opened) return t_pmu.ok;
  t_pmu.opened = true;
  if (!open_group(t_pmu.core, kCoreEvents, 4)) {
    note_pmu_unavailable(errno);
    return false;
  }
  // The mem group is best-effort: some PMUs lack the generic cache events.
  if (!open_group(t_pmu.mem, kMemEvents, 4)) t_pmu.mem.close_all();
  int expected = 0;
  g_pmu_state.compare_exchange_strong(expected, 1, std::memory_order_relaxed);
  g_pmu_threads.fetch_add(1, std::memory_order_relaxed);
  t_pmu.ok = true;
  return true;
}

/// One PERF_FORMAT_GROUP read, multiplex-scaled by time_enabled/time_running.
/// Async-signal-safe (read(2) + arithmetic only).
bool read_group(const PerfGroup& g, std::uint64_t out[kNumCtr]) noexcept {
  if (g.n <= 0) return true;
  // Layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kMaxGroupEvents];
  const ssize_t want = static_cast<ssize_t>((3 + g.n) * sizeof(std::uint64_t));
  if (::read(g.fds[0], buf, static_cast<std::size_t>(want)) != want) return false;
  const std::uint64_t enabled = buf[1], running = buf[2];
  const double scale =
      (running > 0 && running < enabled)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  const auto nr = static_cast<int>(buf[0]) < g.n ? static_cast<int>(buf[0]) : g.n;
  for (int i = 0; i < nr; ++i) {
    out[g.ctr[i]] = static_cast<std::uint64_t>(static_cast<double>(buf[3 + i]) * scale);
  }
  return true;
}

bool read_current(PmuCounts& c) noexcept {
  std::uint64_t v[kNumCtr] = {0, 0, 0, 0, 0, 0, 0, 0};
  if (!read_group(t_pmu.core, v)) return false;
  (void)read_group(t_pmu.mem, v);  // best-effort
  c.cycles = v[kCycles];
  c.instructions = v[kInstructions];
  c.stalled_cycles = v[kStalledCycles];
  c.branch_misses = v[kBranchMisses];
  c.l1d_loads = v[kL1dLoads];
  c.l1d_misses = v[kL1dMisses];
  c.llc_loads = v[kLlcLoads];
  c.llc_misses = v[kLlcMisses];
  return true;
}

#endif  // BST_HAVE_PROF

void update_live_gauges() noexcept {
  const int gi = g_gauge_ipc.load(std::memory_order_relaxed);
  const int gl = g_gauge_llc.load(std::memory_order_relaxed);
  if (gi < 0 && gl < 0) return;
  const std::uint64_t cyc = g_pmu_total[kCycles].load(std::memory_order_relaxed);
  const std::uint64_t ins = g_pmu_total[kInstructions].load(std::memory_order_relaxed);
  const std::uint64_t lda = g_pmu_total[kLlcLoads].load(std::memory_order_relaxed);
  const std::uint64_t mis = g_pmu_total[kLlcMisses].load(std::memory_order_relaxed);
  if (gi >= 0 && cyc > 0) {
    Metrics::gauge_set(gi, static_cast<std::int64_t>(1000.0 * static_cast<double>(ins) /
                                                     static_cast<double>(cyc)));
  }
  if (gl >= 0 && lda > 0) {
    Metrics::gauge_set(gl, static_cast<std::int64_t>(1000.0 * static_cast<double>(mis) /
                                                     static_cast<double>(lda)));
  }
}

// ---------------------------------------------------------------------------
// Sampler: SIGPROF -> backtrace into per-thread rings (flight-recorder
// style: fixed slabs, claim-once via CAS, wrap-around overwrites).  The
// pool is heap-allocated at start() and lives until reset() so exports can
// read it after the timer stops.
// ---------------------------------------------------------------------------

struct Sample {
  std::uint64_t ts_ns = 0;
  std::uint64_t req = 0;
  std::uint64_t cycles = 0;        // scaled core-group totals at sample time
  std::uint64_t instructions = 0;
  std::int32_t phase = -1;
  std::int32_t depth = 0;
  std::int32_t skip = 0;  // leading frames that belong to the signal handler
  void* pc[Prof::kMaxStackFrames];
};

constexpr int kMaxSampleThreads = 64;
constexpr std::uint32_t kRingCap = 2048;  // per thread; wrap counts as dropped

struct SampleRing {
  std::atomic<std::uint64_t> tid{0};   // claimed by thread id; 0 = free
  std::atomic<std::uint32_t> head{0};  // total samples ever written
  Sample ring[kRingCap];
};

struct SamplePool {
  SampleRing rings[kMaxSampleThreads];
};

std::atomic<SamplePool*> g_pool{nullptr};
std::atomic<bool> g_sampling{false};   // timer armed (handler gate)
std::atomic<bool> g_sampled{false};    // a timer ran at some point this run
std::atomic<std::uint64_t> g_table_dropped{0};  // thread-table overflow
std::uint64_t g_interval_us = 0;
std::uint64_t g_sample_cost_ns = 0;
thread_local SampleRing* t_ring = nullptr;

#if defined(BST_HAVE_PROF)

void sigprof_handler(int, siginfo_t*, void* uctx) {
  if (!g_sampling.load(std::memory_order_relaxed)) return;
  SamplePool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  const int saved_errno = errno;
  SampleRing* r = t_ring;
  if (r == nullptr) {
    const auto tid = static_cast<std::uint64_t>(::syscall(SYS_gettid));
    for (auto& cand : pool->rings) {
      std::uint64_t expected = 0;
      if (cand.tid.compare_exchange_strong(expected, tid, std::memory_order_acq_rel) ||
          expected == tid) {
        r = &cand;
        break;
      }
    }
    t_ring = r;
  }
  if (r == nullptr) {
    g_table_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const std::uint32_t h = r->head.load(std::memory_order_relaxed);
  Sample& s = r->ring[h % kRingCap];
  s.ts_ns = TraceClock::now_ns();
  s.req = t_req;
  const int d = t_depth;
  std::atomic_signal_fence(std::memory_order_acquire);
  s.phase = (d > 0 && d <= Prof::kMaxSpanDepth) ? t_frames[d - 1].id : -1;
  // backtrace() is not formally async-signal-safe, but after the warm-up
  // call in sampler_start() (which resolves libgcc's unwinder eagerly) it
  // does not allocate; this is the same approach Linux sampling profilers
  // (gperftools, absl) rely on.
  s.depth = ::backtrace(s.pc, Prof::kMaxStackFrames);
  // The capture's leading frames are the handler itself plus the signal
  // trampoline.  The trampoline's CFI makes the next unwound frame the
  // exact interrupted PC, so locating the ucontext PC in the capture gives
  // a deterministic cut -- name matching alone misses frames that fail to
  // symbolize (static functions, stripped libc).
  s.skip = 0;
  std::uintptr_t ip = 0;
#if defined(__x86_64__)
  if (uctx != nullptr) {
    ip = static_cast<std::uintptr_t>(
        static_cast<ucontext_t*>(uctx)->uc_mcontext.gregs[REG_RIP]);
  }
#elif defined(__aarch64__)
  if (uctx != nullptr) {
    ip = static_cast<std::uintptr_t>(static_cast<ucontext_t*>(uctx)->uc_mcontext.pc);
  }
#else
  (void)uctx;
#endif
  if (ip != 0) {
    for (std::int32_t i = 0; i < s.depth; ++i) {
      if (reinterpret_cast<std::uintptr_t>(s.pc[i]) == ip) {
        s.skip = i;
        break;
      }
    }
  }
  s.cycles = 0;
  s.instructions = 0;
  if (t_pmu.ok && t_pmu.core.n > 0) {
    std::uint64_t v[kNumCtr] = {0, 0, 0, 0, 0, 0, 0, 0};
    if (read_group(t_pmu.core, v)) {
      s.cycles = v[kCycles];
      s.instructions = v[kInstructions];
    }
  }
  r->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

bool sampler_start(std::uint64_t hz) noexcept {
  if (hz == 0 || g_sampling.load(std::memory_order_relaxed)) return false;
  if (g_pool.load(std::memory_order_acquire) == nullptr) {
    g_pool.store(new SamplePool(), std::memory_order_release);
  }
  // Warm the unwinder before the handler can run, and measure the per-
  // sample capture cost against the observability overhead budget.
  {
    void* warm[4];
    (void)::backtrace(warm, 4);
    const std::uint64_t t0 = TraceClock::now_ns();
    constexpr int kProbes = 64;
    for (int i = 0; i < kProbes; ++i) {
      void* pcs[Prof::kMaxStackFrames];
      (void)::backtrace(pcs, Prof::kMaxStackFrames);
    }
    g_sample_cost_ns = (TraceClock::now_ns() - t0) / kProbes;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &sigprof_handler;
  sa.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, nullptr) != 0) return false;
  g_interval_us = 1000000 / hz;
  if (g_interval_us == 0) g_interval_us = 1;
  itimerval it;
  it.it_interval.tv_sec = static_cast<time_t>(g_interval_us / 1000000);
  it.it_interval.tv_usec = static_cast<suseconds_t>(g_interval_us % 1000000);
  it.it_value = it.it_interval;
  g_sampling.store(true, std::memory_order_release);
  if (::setitimer(ITIMER_PROF, &it, nullptr) != 0) {
    g_sampling.store(false, std::memory_order_relaxed);
    return false;
  }
  g_sampled.store(true, std::memory_order_relaxed);
  return true;
}

void sampler_stop() noexcept {
  if (!g_sampling.load(std::memory_order_relaxed)) return;
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  ::setitimer(ITIMER_PROF, &off, nullptr);
  g_sampling.store(false, std::memory_order_release);
}

#else  // !BST_HAVE_PROF

bool sampler_start(std::uint64_t) noexcept { return false; }
void sampler_stop() noexcept {}

#endif

SamplerStats sampler_stats_impl() noexcept {
  SamplerStats st;
  st.enabled = g_sampled.load(std::memory_order_relaxed);
  st.interval_us = g_interval_us;
  st.est_sample_cost_ns = g_sample_cost_ns;
  st.dropped = g_table_dropped.load(std::memory_order_relaxed);
  const SamplePool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return st;
  for (const auto& r : pool->rings) {
    if (r.tid.load(std::memory_order_relaxed) == 0) continue;
    const std::uint32_t h = r.head.load(std::memory_order_acquire);
    if (h == 0) continue;
    ++st.threads;
    st.samples += h;
    if (h > kRingCap) st.dropped += h - kRingCap;  // overwritten by wrap
  }
  return st;
}

// ---------------------------------------------------------------------------
// Symbolization + export (normal context only, after the timer stopped).
// ---------------------------------------------------------------------------

std::string symbolize(void* pc) {
#if defined(BST_HAVE_PROF)
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
    return out;
  }
  if (::dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    std::ostringstream os;
    os << (base != nullptr ? base + 1 : info.dli_fname) << "+0x" << std::hex
       << (reinterpret_cast<std::uintptr_t>(pc) -
           reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    return os.str();
  }
#endif
  std::ostringstream os;
  os << "0x" << std::hex << reinterpret_cast<std::uintptr_t>(pc);
  return os.str();
}

bool frame_is_handler_noise(const std::string& sym) {
  return sym.find("sigprof_handler") != std::string::npos ||
         sym.find("__restore_rt") != std::string::npos ||
         sym.find("killpg") != std::string::npos || sym == "backtrace";
}

/// All currently captured samples, oldest-first per thread; the live window
/// of each ring (wrapped-over slots are gone, already counted as dropped).
struct ThreadSamples {
  std::uint64_t tid = 0;
  std::vector<Sample> samples;
};

std::vector<ThreadSamples> collect_samples() {
  std::vector<ThreadSamples> out;
  const SamplePool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return out;
  for (const auto& r : pool->rings) {
    const std::uint64_t tid = r.tid.load(std::memory_order_relaxed);
    if (tid == 0) continue;
    const std::uint32_t h = r.head.load(std::memory_order_acquire);
    if (h == 0) continue;
    ThreadSamples ts;
    ts.tid = tid;
    const std::uint32_t n = h < kRingCap ? h : kRingCap;
    const std::uint32_t start = h - n;
    ts.samples.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) ts.samples.push_back(r.ring[(start + i) % kRingCap]);
    out.push_back(std::move(ts));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadSamples& a, const ThreadSamples& b) { return a.tid < b.tid; });
  return out;
}

/// Folded stack key of one sample: "phase:<p>;req:<id>;outer;...;leaf".
std::string fold_sample(const Sample& s, const std::vector<std::string>& phase_names,
                        std::map<void*, std::string>& symcache) {
  std::vector<std::string> frames;
  const int n = s.depth < Prof::kMaxStackFrames ? s.depth : Prof::kMaxStackFrames;
  for (int i = 0; i < n; ++i) {
    auto it = symcache.find(s.pc[i]);
    if (it == symcache.end()) it = symcache.emplace(s.pc[i], symbolize(s.pc[i])).first;
    frames.push_back(it->second);
  }
  // Drop the handler/trampoline frames at the top of the capture: the
  // handler's ucontext-PC cut first, then a name-based sweep as backstop.
  std::size_t skip = 0;
  if (s.skip > 0 && s.skip < n) skip = static_cast<std::size_t>(s.skip);
  while (skip < frames.size() && frame_is_handler_noise(frames[skip])) ++skip;
  std::string key = "phase:";
  if (s.phase >= 0 && static_cast<std::size_t>(s.phase) < phase_names.size()) {
    key += phase_names[static_cast<std::size_t>(s.phase)];
  } else {
    key += "(none)";
  }
  if (s.req != 0) {
    key += ";req:";
    key += std::to_string(s.req);
  }
  for (std::size_t i = frames.size(); i > skip; --i) {  // outermost first
    key += ';';
    key += frames[i - 1];
  }
  return key;
}

std::map<std::string, std::uint64_t> folded_counts() {
  std::map<std::string, std::uint64_t> counts;
  const std::vector<std::string> names = Tracer::phase_names();
  std::map<void*, std::string> symcache;
  for (const ThreadSamples& ts : collect_samples()) {
    for (const Sample& s : ts.samples) ++counts[fold_sample(s, names, symcache)];
  }
  return counts;
}

const char* pmu_status_cstr() noexcept {
  switch (g_pmu_state.load(std::memory_order_relaxed)) {
    case 1:
      return "ok";
    case 2:
      return nullptr;  // composed from g_pmu_err
    case 3:
      return "disabled";
    case 4:
      return "off";
    default:
      return "unknown";  // requested but no thread opened a group yet
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ProfOptions
// ---------------------------------------------------------------------------

ProfOptions ProfOptions::from_env() {
  ProfOptions o;
  if (const char* v = std::getenv("BST_PROF"); v != nullptr && *v != '\0') {
    o.armed_by_env = std::string(v) != "0";
  }
  if (const char* v = std::getenv("BST_PROF_PMU"); v != nullptr && *v != '\0') {
    o.pmu = std::string(v) != "0";
  }
  if (const char* v = std::getenv("BST_PROF_HZ"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long hz = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0' && hz <= 10000) o.sample_hz = hz;
  }
  if (const char* v = std::getenv("BST_PROF_OUT"); v != nullptr && *v != '\0') {
    o.out_prefix = v;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Prof
// ---------------------------------------------------------------------------

namespace {
std::string g_out_prefix = "prof";
std::mutex g_arm_mu;
}  // namespace

bool Prof::armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

bool Prof::was_armed() noexcept { return g_was_armed.load(std::memory_order_relaxed); }

void Prof::arm(const ProfOptions& opt) {
  std::lock_guard lock(g_arm_mu);
  if (g_armed.load(std::memory_order_relaxed)) return;
  g_out_prefix = opt.out_prefix;
  g_pmu_wanted.store(opt.pmu, std::memory_order_relaxed);
  if (opt.pmu) {
    // "requested, not yet attempted": the first span on each thread opens
    // the groups; until then status() says "unknown".
    int expected4 = 4;
    g_pmu_state.compare_exchange_strong(expected4, 0, std::memory_order_relaxed);
    int expected3 = 3;
    g_pmu_state.compare_exchange_strong(expected3, 0, std::memory_order_relaxed);
  } else {
    g_pmu_state.store(3, std::memory_order_relaxed);
  }
  if (g_gauge_ipc.load(std::memory_order_relaxed) < 0) {
    g_gauge_ipc.store(Metrics::gauge("pmu_ipc_milli"), std::memory_order_relaxed);
    g_gauge_llc.store(Metrics::gauge("pmu_llc_miss_permille"), std::memory_order_relaxed);
  }
  if (opt.sample_hz > 0) (void)sampler_start(opt.sample_hz);
  g_was_armed.store(true, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void Prof::disarm() {
  std::lock_guard lock(g_arm_mu);
  sampler_stop();
  g_armed.store(false, std::memory_order_release);
}

void Prof::on_span_open(PhaseId id) noexcept {
  if (t_depth >= kMaxSpanDepth) {
    ++t_depth;  // count past the cap so close() stays balanced
    return;
  }
  SpanFrame& f = t_frames[t_depth];
  f.id = id;
  f.have_pmu = false;
#if defined(BST_HAVE_PROF)
  if (g_pmu_wanted.load(std::memory_order_relaxed) && ensure_open()) {
    f.have_pmu = read_current(f.c0);
  }
#endif
  std::atomic_signal_fence(std::memory_order_release);
  ++t_depth;
}

void Prof::on_span_close(PhaseId id) noexcept {
  if (t_depth <= 0) return;  // armed mid-span: nothing recorded for us
  if (t_depth > kMaxSpanDepth) {
    --t_depth;
    return;
  }
  --t_depth;
  std::atomic_signal_fence(std::memory_order_release);
  const SpanFrame& f = t_frames[t_depth];
  if (f.id != id || !f.have_pmu) return;
#if defined(BST_HAVE_PROF)
  PmuCounts c1;
  if (!read_current(c1)) return;
  if (id < 0 || id >= Tracer::kMaxPhases) return;
  const std::uint64_t d[kNumCtr] = {
      c1.cycles - f.c0.cycles,           c1.instructions - f.c0.instructions,
      c1.stalled_cycles - f.c0.stalled_cycles, c1.branch_misses - f.c0.branch_misses,
      c1.l1d_loads - f.c0.l1d_loads,     c1.l1d_misses - f.c0.l1d_misses,
      c1.llc_loads - f.c0.llc_loads,     c1.llc_misses - f.c0.llc_misses,
  };
  PmuSlot& slot = g_pmu_slots[id];
  slot.spans.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < kNumCtr; ++i) {
    // Scaled counters can regress a hair between reads; clamp at zero.
    const std::uint64_t dv = d[i] <= (UINT64_C(1) << 62) ? d[i] : 0;
    slot.v[i].fetch_add(dv, std::memory_order_relaxed);
    g_pmu_total[i].fetch_add(dv, std::memory_order_relaxed);
  }
  update_live_gauges();
#endif
}

bool Prof::pmu_available() noexcept {
  return g_pmu_state.load(std::memory_order_relaxed) == 1;
}

std::string Prof::pmu_status() {
  const char* s = pmu_status_cstr();
  if (s != nullptr) return s;
  std::lock_guard lock(g_pmu_err_mu);
  return g_pmu_err[0] != 0 ? g_pmu_err : "unavailable";
}

std::vector<PhasePmu> Prof::pmu_snapshot() {
  std::vector<PhasePmu> out;
  for (int id = 0; id < Tracer::kMaxPhases; ++id) {
    const PmuSlot& s = g_pmu_slots[id];
    const std::uint64_t spans = s.spans.load(std::memory_order_relaxed);
    if (spans == 0) continue;
    PhasePmu p;
    p.id = id;
    p.spans = spans;
    p.c.cycles = s.v[kCycles].load(std::memory_order_relaxed);
    p.c.instructions = s.v[kInstructions].load(std::memory_order_relaxed);
    p.c.stalled_cycles = s.v[kStalledCycles].load(std::memory_order_relaxed);
    p.c.branch_misses = s.v[kBranchMisses].load(std::memory_order_relaxed);
    p.c.l1d_loads = s.v[kL1dLoads].load(std::memory_order_relaxed);
    p.c.l1d_misses = s.v[kL1dMisses].load(std::memory_order_relaxed);
    p.c.llc_loads = s.v[kLlcLoads].load(std::memory_order_relaxed);
    p.c.llc_misses = s.v[kLlcMisses].load(std::memory_order_relaxed);
    out.push_back(p);
  }
  return out;
}

void Prof::set_request(std::uint64_t id) noexcept { t_req = id; }

SamplerStats Prof::sampler_stats() noexcept { return sampler_stats_impl(); }

std::string Prof::folded_stacks() {
  std::string out;
  for (const auto& [stack, count] : folded_counts()) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Json Prof::section_json() {
  Json prof = Json::object();
  {
    Json pmu = Json::object();
    pmu.set("status", Json::string(pmu_status()));
    pmu.set("available", Json::boolean(pmu_available()));
    pmu.set("threads", Json::number(g_pmu_threads.load(std::memory_order_relaxed)));
    prof.set("pmu", std::move(pmu));
  }
  {
    const SamplerStats st = sampler_stats_impl();
    Json sam = Json::object();
    sam.set("enabled", Json::boolean(st.enabled));
    sam.set("interval_us", Json::number(st.interval_us));
    sam.set("samples", Json::number(st.samples));
    sam.set("dropped", Json::number(st.dropped));
    sam.set("threads", Json::number(st.threads));
    sam.set("est_sample_cost_ns", Json::number(st.est_sample_cost_ns));
    // The sampler's contribution to the run, against the 3% observability
    // budget (attainment's obs_overhead covers the tracer's own cost).
    sam.set("overhead_s",
            Json::number(static_cast<double>(st.samples) *
                         static_cast<double>(st.est_sample_cost_ns) * 1e-9));
    if (!g_sampling.load(std::memory_order_relaxed)) {
      // Top folded stacks inline, so a report renders a flamegraph summary
      // without the artifact files (bst_report --prof).
      std::vector<std::pair<std::string, std::uint64_t>> top;
      for (auto& kv : folded_counts()) top.emplace_back(kv.first, kv.second);
      std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second : a.first < b.first;
      });
      if (top.size() > 10) top.resize(10);
      Json stacks = Json::array();
      for (const auto& [stack, count] : top) {
        Json row = Json::object();
        row.set("stack", Json::string(stack));
        row.set("count", Json::number(count));
        stacks.push(std::move(row));
      }
      sam.set("top_stacks", std::move(stacks));
    }
    prof.set("sampler", std::move(sam));
  }
  return prof;
}

Prof::Artifacts Prof::write_artifacts() {
  Artifacts art;
  const SamplerStats st = sampler_stats_impl();
  if (st.samples == 0 || g_out_prefix.empty()) return art;
  {
    const std::string path = g_out_prefix + ".folded";
    std::ofstream os(path);
    if (os) {
      os << folded_stacks();
      if (os.good()) art.folded = path;
    }
  }
  {
    const std::string path = g_out_prefix + ".samples.json";
    std::ofstream os(path);
    if (os) {
      // Chrome-trace/Perfetto JSON: thread-name metadata, one instant
      // event per sample (stack + phase + req in args), and a derived
      // milli-IPC counter track from consecutive core-group readings.
      Json doc = Json::object();
      Json events = Json::array();
      const std::vector<std::string> names = Tracer::phase_names();
      std::map<void*, std::string> symcache;
#if defined(BST_HAVE_PROF)
      const std::int64_t pid = static_cast<std::int64_t>(::getpid());
#else
      const std::int64_t pid = 1;
#endif
      for (const ThreadSamples& ts : collect_samples()) {
        Json meta = Json::object();
        meta.set("ph", Json::string("M"));
        meta.set("name", Json::string("thread_name"));
        meta.set("pid", Json::number(pid));
        meta.set("tid", Json::number(static_cast<std::uint64_t>(ts.tid)));
        Json margs = Json::object();
        margs.set("name", Json::string("sampled:" + std::to_string(ts.tid)));
        meta.set("args", std::move(margs));
        events.push(std::move(meta));
        std::uint64_t prev_cyc = 0, prev_ins = 0;
        for (const Sample& s : ts.samples) {
          Json ev = Json::object();
          ev.set("ph", Json::string("i"));
          ev.set("s", Json::string("t"));
          ev.set("cat", Json::string("sample"));
          const bool known =
              s.phase >= 0 && static_cast<std::size_t>(s.phase) < names.size();
          ev.set("name",
                 Json::string(known ? names[static_cast<std::size_t>(s.phase)] : "(none)"));
          ev.set("pid", Json::number(pid));
          ev.set("tid", Json::number(static_cast<std::uint64_t>(ts.tid)));
          ev.set("ts", Json::number(static_cast<double>(s.ts_ns) / 1000.0));
          Json args = Json::object();
          args.set("stack", Json::string(fold_sample(s, names, symcache)));
          if (s.req != 0) args.set("req", Json::number(s.req));
          ev.set("args", std::move(args));
          events.push(std::move(ev));
          if (s.cycles > prev_cyc && s.instructions >= prev_ins && prev_cyc != 0) {
            Json ctr = Json::object();
            ctr.set("ph", Json::string("C"));
            ctr.set("name", Json::string("pmu_ipc_milli"));
            ctr.set("pid", Json::number(pid));
            ctr.set("tid", Json::number(static_cast<std::uint64_t>(ts.tid)));
            ctr.set("ts", Json::number(static_cast<double>(s.ts_ns) / 1000.0));
            Json cargs = Json::object();
            cargs.set("ipc_milli",
                      Json::number(static_cast<std::uint64_t>(
                          1000.0 * static_cast<double>(s.instructions - prev_ins) /
                          static_cast<double>(s.cycles - prev_cyc))));
            ctr.set("args", std::move(cargs));
            events.push(std::move(ctr));
          }
          if (s.cycles != 0) {
            prev_cyc = s.cycles;
            prev_ins = s.instructions;
          }
        }
      }
      doc.set("traceEvents", std::move(events));
      doc.set("displayTimeUnit", Json::string("ms"));
      doc.write(os);
      os << '\n';
      if (os.good()) art.perfetto = path;
    }
  }
  return art;
}

void Prof::reset() noexcept {
  for (PmuSlot& s : g_pmu_slots) {
    s.spans.store(0, std::memory_order_relaxed);
    for (auto& v : s.v) v.store(0, std::memory_order_relaxed);
  }
  for (auto& v : g_pmu_total) v.store(0, std::memory_order_relaxed);
  if (!g_sampling.load(std::memory_order_relaxed)) {
    // Drop captured samples (rings stay claimed by their threads; only the
    // heads rewind).  Never while the timer is live.
    SamplePool* pool = g_pool.load(std::memory_order_acquire);
    if (pool != nullptr) {
      for (auto& r : pool->rings) r.head.store(0, std::memory_order_relaxed);
    }
    g_table_dropped.store(0, std::memory_order_relaxed);
    g_sampled.store(false, std::memory_order_relaxed);
    g_was_armed.store(false, std::memory_order_relaxed);
  }
}

}  // namespace bst::util
