// Hardware-truth profiling: per-phase PMU counters + a sampling profiler.
//
// Everything else in the observability layer is *self*-instrumented: spans
// measure wall time, the flop/byte counters are modeled operand counts, and
// the attainment section judges them against calibrated ceilings.  This
// layer asks the hardware what actually happened, two ways:
//
//   1. PMU counters per phase.  When armed, every thread lazily opens two
//      perf_event counter groups on itself (core: cycles, instructions,
//      stalled cycles, branch misses; mem: L1d and LLC loads + misses) and
//      TraceSpan boundaries snapshot them, so each phase accumulates
//      hardware deltas next to its modeled flops/bytes.  The report's
//      phases then carry measured IPC and miss rates, and `measured_bytes`
//      (LLC misses x 64-byte lines, a DRAM-traffic estimate) joins the
//      modeled byte count in the attainment section as
//      `measured_intensity` / `measured_vs_model_bytes_ratio`.
//   2. A sampling profiler.  An ITIMER_PROF timer delivers SIGPROF to
//      whichever thread is burning CPU; the handler captures a backtrace
//      into a per-thread flight-recorder-style ring together with the
//      active phase (from the span stack this layer maintains) and the
//      active `req:<id>` (set by the service dispatcher, the same ids the
//      crashbox request table carries).  Samples export as folded stacks
//      (flamegraph-ready, self-symbolized via dladdr) and as a Perfetto/
//      chrome-trace file with per-thread sample tracks and a PMU counter
//      track.
//
// Degradation contract: perf_event_open is denied in most containers and
// CI runners (perf_event_paranoid, seccomp).  That must never fail a run:
// the PMU side records its status ("unavailable: ..."), reports omit the
// hardware columns, and the software-only sampler keeps working.  Nothing
// here throws on the hot path.
//
// Cost: disarmed, the TraceSpan hooks are one relaxed load + branch (same
// contract as the Tracer).  Armed, each span boundary pays two read(2)
// calls on the perf fds (~1-2 us); sampling costs ~est_sample_cost_ns per
// sample, reported against the 3% observability budget in the "prof"
// report section.  docs/OBSERVABILITY.md ("Profiling") has the full story.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/report.h"
#include "util/trace.h"

namespace bst::util {

/// One thread-and-interval's worth of scaled hardware counter readings.
/// Multiplex scaling (time_enabled / time_running) is already applied;
/// counters whose event could not be opened stay 0.
struct PmuCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t stalled_cycles = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
};

/// Accumulated PMU deltas of one phase (mirrors PhaseStats).
struct PhasePmu {
  PhaseId id = -1;
  std::uint64_t spans = 0;  // spans that contributed a hardware delta
  PmuCounts c;
};

/// Copied-out sampler state.
struct SamplerStats {
  bool enabled = false;          // a sampling timer was started this run
  std::uint64_t interval_us = 0;
  std::uint64_t samples = 0;     // captured (including ones later overwritten)
  std::uint64_t dropped = 0;     // thread-table overflow + ring wrap-around
  std::uint64_t threads = 0;     // distinct threads that recorded samples
  std::uint64_t est_sample_cost_ns = 0;  // measured at start()
};

/// Knobs, layered flags-over-environment like the telemetry options.
struct ProfOptions {
  bool pmu = true;                 // open perf_event counter groups
  std::uint64_t sample_hz = 197;   // SIGPROF rate; 0 = sampling off
  std::string out_prefix = "prof"; // artifacts: <prefix>.folded, <prefix>.samples.json

  /// BST_PROF_PMU ("0" disables the PMU side), BST_PROF_HZ, BST_PROF_OUT.
  /// BST_PROF itself ("1") is the whole-profiler arm switch the bench
  /// harness and bst_solve honor; it lands in `armed_by_env`.
  static ProfOptions from_env();
  bool armed_by_env = false;
};

/// Process-wide profiler facade.  arm()/disarm() bracket a profiled run;
/// the TraceSpan hooks and the report builder do the rest.
class Prof {
 public:
  /// One relaxed load: the whole layer costs a branch while disarmed.
  static bool armed() noexcept;

  /// Arms the profiler: opens (lazily, per thread) the PMU groups when
  /// opt.pmu, starts the SIGPROF sampler when opt.sample_hz > 0, and
  /// registers the live pmu_ipc_milli / pmu_llc_miss_permille gauges.
  /// Idempotent; never throws -- failures land in pmu_status().
  static void arm(const ProfOptions& opt);

  /// Stops the sampling timer and detaches the span hooks.  Accumulated
  /// data stays readable (reports are built after disarm()).
  static void disarm();

  /// True once arm() ran, surviving disarm() until reset(): the report
  /// builder uses this to decide whether a "prof" section belongs.
  static bool was_armed() noexcept;

  /// TraceSpan hooks (called by util/trace.cc while armed): maintain the
  /// per-thread span stack the sampler attributes against and snapshot/
  /// commit the PMU counter deltas.
  static void on_span_open(PhaseId id) noexcept;
  static void on_span_close(PhaseId id) noexcept;

  /// PMU availability: resolved by the first thread that tries to open a
  /// group.  status() is "ok", "disabled", "off" (never requested) or
  /// "unavailable: <reason>".
  static bool pmu_available() noexcept;
  static std::string pmu_status();

  /// Per-phase accumulated hardware deltas (phases with >= 1 span only).
  static std::vector<PhasePmu> pmu_snapshot();

  /// Tags the calling thread's samples with a request id (0 = none); the
  /// service dispatcher sets this to the batch it is serving, matching the
  /// ids in the crashbox active-request table.
  static void set_request(std::uint64_t id) noexcept;

  static SamplerStats sampler_stats() noexcept;

  /// Folded flamegraph stacks ("root;...;leaf count" lines), symbolized
  /// via dladdr at export time.  Empty when no samples were captured.
  static std::string folded_stacks();

  /// The report's "prof" section: pmu status + sampler stats + the top
  /// folded stacks (so a report stays self-contained without the artifact
  /// files).  Deterministic key order.
  static Json section_json();

  /// Writes <prefix>.folded and <prefix>.samples.json (Perfetto/chrome
  /// trace with sample + counter tracks) when any samples exist.  Returns
  /// the paths written (empty strings otherwise).  Call after disarm().
  struct Artifacts {
    std::string folded;
    std::string perfetto;
  };
  static Artifacts write_artifacts();

  /// Zeroes per-phase PMU accumulators, drops samples and clears
  /// was_armed() (called by Tracer::reset(); thread fds stay open).
  static void reset() noexcept;

  static constexpr int kMaxSpanDepth = 24;   // nested-span attribution stack
  static constexpr int kMaxStackFrames = 20; // pcs kept per sample
};

}  // namespace bst::util
