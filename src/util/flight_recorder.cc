#include "util/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "util/crashbox.h"  // sigsafe write helpers for unsafe_dump

namespace bst::util {
namespace {

constexpr std::size_t kLabelBuf = 48;  // signal-safe label mirror (truncating)

struct ThreadRing {
  explicit ThreadRing(std::uint32_t id, std::size_t capacity)
      : tid(id), ring(capacity) {
    data.store(ring.data(), std::memory_order_release);
    cap.store(ring.size(), std::memory_order_release);
  }

  std::uint32_t tid;
  std::string label;                   // guarded by the registry mutex
  bool is_virtual = false;             // virtual_track() ring (virtual time)
  bool fixed_capacity = false;         // track(): keeps its size across enable()
  std::atomic<std::uint64_t> head{0};  // total events ever recorded
  std::vector<FlightEvent> ring;

  // Mirrors for the async-signal-safe unsafe_dump(): the handler must not
  // touch the std::vector/std::string members, so storage pointer, capacity,
  // and label are shadowed in atomics / a fixed buffer (updated under the
  // registry mutex whenever the real fields change).
  std::atomic<const FlightEvent*> data{nullptr};
  std::atomic<std::size_t> cap{0};
  char label_buf[kLabelBuf] = {};

  void set_label(const std::string& l) {  // caller holds the registry mutex
    label = l;
    std::size_t n = l.size();
    if (n > kLabelBuf - 1) n = kLabelBuf - 1;
    std::memcpy(label_buf, l.data(), n);
    label_buf[n] = '\0';
  }

  void push(const FlightEvent& e) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    ring[static_cast<std::size_t>(h % ring.size())] = e;
    head.store(h + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;  // never shrinks
  std::size_t capacity = FlightRecorder::kDefaultCapacity;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: rings must outlive any thread
  return *r;
}

// Lock-free mirror of the registry for unsafe_dump(): a fixed array of ring
// pointers published with release stores.  Rings past the cap are counted,
// not silently dropped (the report carries a rings_skipped line).
constexpr std::size_t kMaxMirrorRings = 1024;
std::atomic<ThreadRing*> g_mirror[kMaxMirrorRings];
std::atomic<std::size_t> g_mirror_count{0};
std::atomic<std::uint64_t> g_mirror_skipped{0};

void mirror_register(ThreadRing* r) noexcept {  // caller holds the registry mutex
  const std::size_t n = g_mirror_count.load(std::memory_order_relaxed);
  if (n >= kMaxMirrorRings) {
    g_mirror_skipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_mirror[n].store(r, std::memory_order_release);
  g_mirror_count.store(n + 1, std::memory_order_release);
}

// The owning thread's ring, registered on first use.  The pointer stays
// valid for the process lifetime (rings are only cleared, never freed).
ThreadRing* my_ring() {
  static thread_local ThreadRing* ring = [] {
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.rings.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint32_t>(reg.rings.size()), reg.capacity));
    mirror_register(reg.rings.back().get());
    return reg.rings.back().get();
  }();
  return ring;
}

std::uint64_t bits(double v) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

double unbits(std::uint64_t u) noexcept {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof v);
  return v;
}

}  // namespace

std::atomic<bool> FlightRecorder::enabled_{false};

void FlightRecorder::enable(std::size_t capacity) {
  capacity = std::max<std::size_t>(2, capacity);
  Registry& reg = registry();
  {
    std::lock_guard lock(reg.mu);
    reg.capacity = capacity;
    for (auto& r : reg.rings) {
      if (!r->fixed_capacity && r->ring.size() != capacity) {
        r->ring.assign(capacity, FlightEvent{});
        r->data.store(r->ring.data(), std::memory_order_release);
        r->cap.store(r->ring.size(), std::memory_order_release);
      }
      r->head.store(0, std::memory_order_relaxed);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& r : reg.rings) r->head.store(0, std::memory_order_relaxed);
}

void FlightRecorder::begin(PhaseId phase, std::uint64_t ts_ns, std::uint64_t flops_now,
                           std::uint64_t bytes_now) noexcept {
  if (!enabled()) return;
  my_ring()->push({ts_ns, Tracer::current_step(), flops_now, bytes_now, phase,
                   EventKind::kBegin});
}

void FlightRecorder::end(PhaseId phase, std::uint64_t ts_ns, std::uint64_t dflops,
                         std::uint64_t dbytes) noexcept {
  if (!enabled()) return;
  my_ring()->push({ts_ns, Tracer::current_step(), dflops, dbytes, phase, EventKind::kEnd});
}

void FlightRecorder::instant(PhaseId phase, std::int64_t step, double value,
                             double threshold) noexcept {
  if (!enabled()) return;
  my_ring()->push({TraceClock::now_ns(), step, bits(value), bits(threshold), phase,
                   EventKind::kInstant, -1});
}

void FlightRecorder::label_thread(const std::string& label) {
  ThreadRing* ring = my_ring();
  std::lock_guard lock(registry().mu);
  ring->set_label(label);
}

std::uint32_t FlightRecorder::virtual_track(const std::string& label) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (const auto& r : reg.rings) {
    if (r->is_virtual && r->label == label) return r->tid;
  }
  reg.rings.push_back(std::make_unique<ThreadRing>(
      static_cast<std::uint32_t>(reg.rings.size()), reg.capacity));
  reg.rings.back()->set_label(label);
  reg.rings.back()->is_virtual = true;
  mirror_register(reg.rings.back().get());
  return reg.rings.back()->tid;
}

std::uint32_t FlightRecorder::track(const std::string& label, std::size_t capacity) {
  capacity = std::max<std::size_t>(2, capacity);
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (const auto& r : reg.rings) {
    if (r->fixed_capacity && r->label == label) return r->tid;
  }
  reg.rings.push_back(std::make_unique<ThreadRing>(
      static_cast<std::uint32_t>(reg.rings.size()), capacity));
  reg.rings.back()->set_label(label);
  reg.rings.back()->fixed_capacity = true;
  mirror_register(reg.rings.back().get());
  return reg.rings.back()->tid;
}

void FlightRecorder::virtual_span(std::uint32_t tid, PhaseId phase, std::int64_t step,
                                  std::uint64_t t0_ns, std::uint64_t t1_ns,
                                  std::uint64_t bytes, std::int32_t peer) {
  if (!enabled()) return;
  Registry& reg = registry();
  ThreadRing* ring = nullptr;
  {
    std::lock_guard lock(reg.mu);
    if (tid >= reg.rings.size()) return;
    ring = reg.rings[tid].get();
  }
  ring->push({t0_ns, step, 0, 0, phase, EventKind::kBegin, peer});
  ring->push({t1_ns, step, 0, bytes, phase, EventKind::kEnd, peer});
}

std::uint32_t FlightRecorder::current_tid() { return my_ring()->tid; }

std::string FlightRecorder::open_span_name(std::uint32_t tid) {
  Registry& reg = registry();
  PhaseId open = -1;
  {
    std::lock_guard lock(reg.mu);
    if (tid >= reg.rings.size()) return std::string();
    const ThreadRing& r = *reg.rings[tid];
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t cap = r.ring.size();
    const std::uint64_t first = head > cap ? head - cap : 0;
    std::vector<PhaseId> stack;
    for (std::uint64_t i = first; i < head; ++i) {
      const FlightEvent& e = r.ring[static_cast<std::size_t>(i % cap)];
      if (e.kind == EventKind::kBegin) {
        stack.push_back(e.phase);
      } else if (e.kind == EventKind::kEnd && !stack.empty()) {
        stack.pop_back();
      }
    }
    if (stack.empty()) return std::string();
    open = stack.back();
  }
  const std::vector<std::string> names = Tracer::phase_names();
  if (open >= 0 && static_cast<std::size_t>(open) < names.size()) {
    return names[static_cast<std::size_t>(open)];
  }
  return "phase_" + std::to_string(open);
}

std::vector<ThreadEvents> FlightRecorder::snapshot() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  std::vector<ThreadEvents> out;
  for (const auto& r : reg.rings) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    const std::uint64_t cap = r->ring.size();
    ThreadEvents te;
    te.tid = r->tid;
    te.label = r->label;
    te.virtual_time = r->is_virtual;
    te.dropped = head > cap ? head - cap : 0;
    const std::uint64_t first = head > cap ? head - cap : 0;
    te.events.reserve(static_cast<std::size_t>(head - first));
    for (std::uint64_t i = first; i < head; ++i) {
      te.events.push_back(r->ring[static_cast<std::size_t>(i % cap)]);
    }
    // An End whose Begin was overwritten by ring wrap is a lost span, not
    // just an unmatched token: count it into the dropped tally so the wrap
    // loss is never silent (the exporter already skips it when balancing).
    std::uint64_t depth = 0;
    for (const FlightEvent& e : te.events) {
      if (e.kind == EventKind::kBegin) {
        ++depth;
      } else if (e.kind == EventKind::kEnd) {
        if (depth > 0) {
          --depth;
        } else {
          ++te.unmatched_ends;
        }
      }
    }
    te.dropped += te.unmatched_ends;
    out.push_back(std::move(te));
  }
  return out;
}

void FlightRecorder::unsafe_dump(int fd) noexcept {
  using sigsafe::write_all;
  using sigsafe::write_str;
  using sigsafe::write_u64;

  write_str(fd, "event_size ");
  write_u64(fd, sizeof(FlightEvent));
  write_str(fd, "\nrings_begin\n");
  const std::size_t n = g_mirror_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const ThreadRing* r = g_mirror[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const FlightEvent* data = r->data.load(std::memory_order_acquire);
    const std::uint64_t cap = r->cap.load(std::memory_order_acquire);
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (data == nullptr || cap == 0 || head == 0) continue;
    const std::uint64_t count = head < cap ? head : cap;
    write_str(fd, "ring ");
    write_u64(fd, r->tid);
    write_str(fd, r->is_virtual ? " 1 " : " 0 ");
    write_u64(fd, head);
    write_str(fd, " ");
    write_u64(fd, cap);
    write_str(fd, " ");
    write_u64(fd, count);
    write_str(fd, " ");
    write_u64(fd, head > cap ? head - cap : 0);
    write_str(fd, " ");
    write_str(fd, r->label_buf);
    write_str(fd, "\n");
    // Oldest-first is at most two contiguous chunks of the ring storage.
    const std::uint64_t start = (head - count) % cap;
    const std::uint64_t chunk = std::min(count, cap - start);
    write_all(fd, data + start, static_cast<std::size_t>(chunk) * sizeof(FlightEvent));
    if (chunk < count) {
      write_all(fd, data, static_cast<std::size_t>(count - chunk) * sizeof(FlightEvent));
    }
    write_str(fd, "\n");
  }
  const std::uint64_t skipped = g_mirror_skipped.load(std::memory_order_relaxed);
  if (skipped > 0) {
    write_str(fd, "rings_skipped ");
    write_u64(fd, skipped);
    write_str(fd, "\n");
  }
  write_str(fd, "rings_end\n");
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// One chrome-trace event line.  ts/dur are microseconds (chrome's unit);
// fractional digits keep nanosecond resolution.
void write_event(std::ostream& os, bool& first, const std::string& name, char ph,
                 std::uint32_t tid, double ts_us, const std::string& args) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": ";
  write_json_string(os, name);
  os << ", \"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << tid;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  os << ", \"ts\": " << buf;
  if (!args.empty()) os << ", \"args\": {" << args << "}";
  os << "}";
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void FlightRecorder::write_chrome_trace(std::ostream& os) {
  const std::vector<ThreadEvents> threads = snapshot();
  const std::vector<std::string> names = Tracer::phase_names();
  auto name_of = [&](PhaseId p) -> std::string {
    if (p >= 0 && static_cast<std::size_t>(p) < names.size()) return names[static_cast<std::size_t>(p)];
    return "phase_" + std::to_string(p);
  };

  // Common time origin so threads align in the viewer.  Virtual tracks
  // (replayed simulated schedules) are already zero-based in virtual time;
  // only the steady-clock rings need rebasing.
  std::uint64_t t0 = ~std::uint64_t{0};
  bool any_real = false;
  for (const ThreadEvents& te : threads) {
    if (te.virtual_time) continue;
    any_real = true;
    for (const FlightEvent& e : te.events) t0 = std::min(t0, e.ts_ns);
  }
  if (!any_real) t0 = 0;

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  // Track-name metadata first, so viewers show "pe:<k>" labels.
  for (const ThreadEvents& te : threads) {
    if (te.label.empty()) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << te.tid
       << ", \"args\": {\"name\": ";
    write_json_string(os, te.label);
    os << "}}";
  }
  for (const ThreadEvents& te : threads) {
    // Re-balance: drop Ends whose Begin was lost to ring wrap, and Begins
    // still open at snapshot, so every emitted tid nests B/E exactly.
    std::vector<char> emit(te.events.size(), 0);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < te.events.size(); ++i) {
      const FlightEvent& e = te.events[i];
      switch (e.kind) {
        case EventKind::kBegin: stack.push_back(i); break;
        case EventKind::kEnd:
          if (!stack.empty()) {
            emit[stack.back()] = 1;
            emit[i] = 1;
            stack.pop_back();
          }
          break;
        case EventKind::kInstant: emit[i] = 1; break;
      }
    }
    for (std::size_t i = 0; i < te.events.size(); ++i) {
      if (!emit[i]) continue;
      const FlightEvent& e = te.events[i];
      const double ts_us = static_cast<double>(e.ts_ns - (te.virtual_time ? 0 : t0)) * 1e-3;
      switch (e.kind) {
        case EventKind::kBegin: {
          std::string args = "\"step\": " + std::to_string(e.step);
          if (e.peer >= 0) args += ", \"peer\": " + std::to_string(e.peer);
          write_event(os, first, name_of(e.phase), 'B', te.tid, ts_us, args);
          break;
        }
        case EventKind::kEnd: {
          std::string args = "\"flops\": " + std::to_string(e.a) +
                             ", \"bytes\": " + std::to_string(e.b);
          if (e.peer >= 0) args += ", \"peer\": " + std::to_string(e.peer);
          write_event(os, first, name_of(e.phase), 'E', te.tid, ts_us, args);
          break;
        }
        case EventKind::kInstant: {
          std::string args = "\"step\": " + std::to_string(e.step) +
                             ", \"value\": " + num(unbits(e.a)) +
                             ", \"threshold\": " + num(unbits(e.b));
          if (!first) os << ",\n";
          first = false;
          os << "    {\"name\": ";
          write_json_string(os, name_of(e.phase));
          os << ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " << te.tid;
          char buf[40];
          std::snprintf(buf, sizeof buf, "%.3f", ts_us);
          os << ", \"ts\": " << buf << ", \"args\": {" << args << "}}";
          break;
        }
      }
    }
    if (te.dropped > 0) {
      write_event(os, first, "flight_recorder_dropped", 'i', te.tid, 0.0,
                  "\"dropped\": " + std::to_string(te.dropped));
    }
  }
  os << "\n  ]\n}\n";
}

void FlightRecorder::write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("FlightRecorder: cannot open '" + path + "' for writing");
  write_chrome_trace(f);
}

}  // namespace bst::util
