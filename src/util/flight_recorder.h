// Event flight recorder: per-thread rings of begin/end/instant records with
// a Perfetto / chrome://tracing JSON exporter.
//
// The Tracer (util/trace.h) accumulates *totals*; the flight recorder keeps
// the individual events, so a run can be opened in Perfetto's chrome-trace
// mode and read as a timeline: every reflector build/apply span per Schur
// step per thread/PE, with its flop/byte deltas, plus instant markers for
// numerical-health warnings (util/watchdog.h).
//
// Design:
//   * One fixed-capacity ring per recording thread.  The owning thread is
//     the only writer, so recording is lock-free: a plain slot write plus a
//     release store of the head index.  The registry of rings takes a mutex
//     only on a thread's *first* event.
//   * Overflow wraps: the ring keeps the most recent `capacity` events and
//     counts the drops.  The exporter re-balances (an End whose Begin was
//     overwritten, or a Begin still open at snapshot, is dropped) so the
//     emitted chrome trace always has matched B/E pairs per tid.
//   * Enabled alongside the Tracer (TraceSpan emits begin/end events when
//     both are on); `bst_solve --trace=out.json` and the bench_fig*
//     `--trace=` flag wire it up.  Disabled cost: one relaxed load + branch
//     on the paths that already test Tracer::enabled().
//   * Rings live for the process (a few MB per recording thread at the
//     default capacity); reset()/snapshot() expect no concurrently open
//     spans, like Tracer::reset().
//
// The trace-file format is documented in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/trace.h"

namespace bst::util {

enum class EventKind : std::uint8_t {
  kBegin,    // span opened: a/b hold the thread's flop/byte counters
  kEnd,      // span closed: a/b hold the span's flop/byte deltas
  kInstant,  // point event (watchdog warning): a/b hold value/threshold bits
};

/// One flight-recorder record (POD; 48 bytes).
struct FlightEvent {
  std::uint64_t ts_ns = 0;   // steady-clock (or virtual) timestamp
  std::int64_t step = 0;     // Schur step index (Tracer::current_step())
  std::uint64_t a = 0;       // kind-dependent payload (see EventKind)
  std::uint64_t b = 0;
  PhaseId phase = -1;        // interned name (Tracer::phase registry)
  EventKind kind = EventKind::kBegin;
  std::int32_t peer = -1;    // message partner PE (simnet spans; -1 = none)
};

/// Snapshot of one thread's ring, oldest event first.
struct ThreadEvents {
  std::uint32_t tid = 0;            // dense recorder-assigned id
  std::uint64_t dropped = 0;        // wrap-lost events + unmatched_ends
  std::uint64_t unmatched_ends = 0; // Ends whose Begin was overwritten by wrap
  std::string label;                // display name ("pe:<k>"; "" = unnamed)
  bool virtual_time = false;        // virtual_track(): ts is virtual, zero-based
  std::vector<FlightEvent> events;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  // events per thread

  /// Turns recording on.  `capacity` sets the per-thread ring size (rounded
  /// up to 2); changing it clears existing rings.  Call with no concurrent
  /// recorders (same contract as Tracer::reset()).
  static void enable(std::size_t capacity = kDefaultCapacity);
  static void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  static bool enabled() noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Clears every ring (tids are preserved; capacity is unchanged).
  static void reset();

  /// Records a span begin/end for the calling thread (no-ops off).
  static void begin(PhaseId phase, std::uint64_t ts_ns, std::uint64_t flops_now,
                    std::uint64_t bytes_now) noexcept;
  static void end(PhaseId phase, std::uint64_t ts_ns, std::uint64_t dflops,
                  std::uint64_t dbytes) noexcept;

  /// Records an instant marker (watchdog warnings; no-ops off).
  static void instant(PhaseId phase, std::int64_t step, double value,
                      double threshold) noexcept;

  /// Names the calling thread's track in the exported trace (chrome-trace
  /// "thread_name" metadata).  The SPMD runtime labels its PE threads
  /// "pe:<k>" so threaded runs read as per-PE timelines.
  static void label_thread(const std::string& label);

  /// Registers (or finds) a *virtual* track: a ring owned by no thread,
  /// used to replay simulated per-PE schedules (util/par_analysis.h) with
  /// virtual timestamps.  One writer at a time per track.
  static std::uint32_t virtual_track(const std::string& label);

  /// Registers (or finds) an unowned *real-time* track with its own fixed
  /// ring capacity, exempt from enable()'s capacity reassignment.  Used for
  /// the per-request "req:<id>" tracks (src/service): each request emits a
  /// handful of spans, so a tiny ring per track keeps thousands of tracks
  /// cheap.  Timestamps are steady-clock, so the exporter rebases these
  /// alongside the owned per-thread rings.  One writer at a time per track.
  static std::uint32_t track(const std::string& label, std::size_t capacity);

  /// Appends one balanced begin/end pair to a virtual or unowned track.
  /// `bytes` and `peer` land in the end event's payload.
  static void virtual_span(std::uint32_t tid, PhaseId phase, std::int64_t step,
                           std::uint64_t t0_ns, std::uint64_t t1_ns, std::uint64_t bytes,
                           std::int32_t peer);

  /// The calling thread's recorder tid (registers the ring on first use).
  /// util/stallguard captures it at heartbeat registration so the monitor
  /// can name a stalled thread's open span.
  static std::uint32_t current_tid();

  /// Name of the deepest still-open span in `tid`'s ring window, or "" when
  /// none is open (or the tid is unknown).  Takes the registry mutex; meant
  /// for the stallguard monitor, not hot paths.
  static std::string open_span_name(std::uint32_t tid);

  /// Copies out every thread's ring, oldest-first per thread.
  static std::vector<ThreadEvents> snapshot();

  /// Async-signal-safe raw dump of every ring to `fd` for the crashbox
  /// handler (util/crashbox.h): per-ring header lines followed by the raw
  /// FlightEvent bytes, oldest-first.  Walks a lock-free mirror of the
  /// registry (no mutex, no allocation) while other threads may still be
  /// recording, so individual events can be torn -- the decoder
  /// (util/postmortem.h) validates and skips garbage records.
  static void unsafe_dump(int fd) noexcept;

  /// Writes the chrome-trace ("traceEvents") JSON document.  Unmatched
  /// events are dropped so every emitted tid has balanced B/E pairs.
  /// write_chrome_trace throws std::runtime_error when the path cannot be
  /// opened.
  static void write_chrome_trace(std::ostream& os);
  static void write_chrome_trace(const std::string& path);

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace bst::util
