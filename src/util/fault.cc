#include "util/fault.h"

#include <atomic>
#include <cfenv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace bst::util {
namespace {

constexpr std::size_t kSiteMax = 32;

std::atomic<bool> g_armed{false};
char g_site[kSiteMax];
FaultKind g_kind = FaultKind::kNone;
std::uint64_t g_count = 1;
std::uint64_t g_hang_ms = 2000;
std::uint64_t g_slow_ms = 50;
std::atomic<std::uint64_t> g_hits{0};
char g_describe[96];

std::uint64_t env_ms(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end != nullptr && end != v) ? static_cast<std::uint64_t>(n) : def;
}

const char* kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kFpTrap: return "fp-trap";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kNone: break;
  }
  return "none";
}

void trigger(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: {
      volatile int* p = nullptr;
      *p = 42;             // SIGSEGV
      std::abort();        // unreachable fallback
    }
    case FaultKind::kFpTrap: {
#if defined(__GLIBC__)
      ::feenableexcept(FE_DIVBYZERO | FE_INVALID);
      volatile double zero = 0.0;
      volatile double r = 1.0 / zero;  // SIGFPE with traps enabled
      (void)r;
#endif
      std::raise(SIGFPE);  // portable fallback (and non-glibc path)
      return;
    }
    case FaultKind::kHang:
      std::this_thread::sleep_for(std::chrono::milliseconds(g_hang_ms));
      return;
    case FaultKind::kSlow:
      std::this_thread::sleep_for(std::chrono::milliseconds(g_slow_ms));
      return;
    case FaultKind::kNone:
      return;
  }
}

// Parse at load time so fire() never has to check "parsed yet?".
[[maybe_unused]] const bool g_parsed_at_load = [] {
  Fault::reload();
  return true;
}();

}  // namespace

bool Fault::armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

const char* Fault::describe() noexcept { return armed() ? g_describe : ""; }

void Fault::reload() {
  g_armed.store(false, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_kind = FaultKind::kNone;
  g_count = 1;
  g_site[0] = '\0';
  g_describe[0] = '\0';
  g_hang_ms = env_ms("BST_FAULT_HANG_MS", 2000);
  g_slow_ms = env_ms("BST_FAULT_SLOW_MS", 50);

  const char* spec = std::getenv("BST_FAULT");
  if (spec == nullptr || *spec == '\0') return;

  // <site>:<kind>[:<count>]
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s", spec);
  char* kind_s = std::strchr(buf, ':');
  if (kind_s == nullptr) {
    std::fprintf(stderr, "[bst_fault] malformed BST_FAULT '%s' (want site:kind[:count])\n",
                 spec);
    return;
  }
  *kind_s++ = '\0';
  char* count_s = std::strchr(kind_s, ':');
  if (count_s != nullptr) *count_s++ = '\0';

  FaultKind kind = FaultKind::kNone;
  if (std::strcmp(kind_s, "crash") == 0) kind = FaultKind::kCrash;
  else if (std::strcmp(kind_s, "hang") == 0) kind = FaultKind::kHang;
  else if (std::strcmp(kind_s, "fp-trap") == 0) kind = FaultKind::kFpTrap;
  else if (std::strcmp(kind_s, "slow") == 0) kind = FaultKind::kSlow;
  if (kind == FaultKind::kNone) {
    std::fprintf(stderr, "[bst_fault] unknown fault kind '%s' in BST_FAULT\n", kind_s);
    return;
  }

  std::uint64_t count = 1;
  if (count_s != nullptr && *count_s != '\0') {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(count_s, &end, 10);
    if (end == count_s || n == 0) {
      std::fprintf(stderr, "[bst_fault] bad count '%s' in BST_FAULT\n", count_s);
      return;
    }
    count = static_cast<std::uint64_t>(n);
  }

  std::snprintf(g_site, sizeof g_site, "%.31s", buf);  // site names are short
  g_kind = kind;
  g_count = count;
  std::snprintf(g_describe, sizeof g_describe, "%s:%s:%llu", g_site, kind_name(kind),
                static_cast<unsigned long long>(count));
  g_armed.store(true, std::memory_order_release);
  std::fprintf(stderr, "[bst_fault] armed %s\n", g_describe);
}

void Fault::fire(const char* site) noexcept {
  if (!armed() || site == nullptr) return;
  if (std::strcmp(site, g_site) != 0) return;
  const std::uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  // slow fires on every hit from the threshold on; the one-shot kinds fire
  // exactly once, on the threshold hit.
  if (g_kind == FaultKind::kSlow ? hit >= g_count : hit == g_count) {
    if (g_kind != FaultKind::kSlow) {
      std::fprintf(stderr, "[bst_fault] firing %s at site '%s' (hit %llu)\n",
                   kind_name(g_kind), g_site, static_cast<unsigned long long>(hit));
    }
    trigger(g_kind);
  }
}

}  // namespace bst::util
