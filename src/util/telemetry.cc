#include "util/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/crashbox.h"
#include "util/report.h"
#include "util/stallguard.h"
#include "util/trace.h"

namespace bst::util {
namespace {

const CtrId kTicks = Metrics::counter("telemetry_ticks");

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return fallback;
  return v;
}

double env_f64(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return fallback;
  return v;
}

std::string env_str(const char* name, std::string fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return s;
}

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our interned names
// can carry anything (phase histograms like "req:12_ns"), so map the rest
// to '_'.  The "bst_" prefix handles the leading-character rule.
std::string prom_name(const std::string& name) {
  std::string out = "bst_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// HELP text shares the label-value escapes except for the double quote,
// which is legal in help text.
std::string prom_escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string gauge_help(const std::string& name) {
  if (name == "bst_qps") return "Rolling-window completed-request throughput (1/s).";
  if (name == "bst_p50_ms") return "Rolling-window p50 request latency (ms).";
  if (name == "bst_p99_ms") return "Rolling-window p99 request latency (ms).";
  if (name == "bst_slo_p99_ms") return "Configured p99 latency SLO target (ms).";
  if (name == "bst_burn_rate") return "SLO error-budget burn rate (bad fraction over a 1% budget).";
  if (name == "bst_uptime_seconds") return "Telemetry exporter uptime (s).";
  if (name == "bst_telemetry_self_seconds") return "Cumulative telemetry exporter self time (s).";
  return "Instantaneous gauge from the bst metrics registry.";
}

const CounterStats* find_counter(const TelemetrySnapshot& s, const std::string& name) {
  for (const CounterStats& c : s.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramStats* find_hist(const TelemetrySnapshot& s, const std::string& name) {
  for (const HistogramStats& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// Distribution of exactly the window's samples: per-bucket count deltas
// between the window's newest and oldest snapshot of one histogram (the
// accumulators are monotone, so the difference is the window).
HistogramStats window_hist(const HistogramStats* oldest, const HistogramStats* newest) {
  HistogramStats w;
  if (newest == nullptr) return w;
  std::map<double, std::uint64_t> delta;
  for (const auto& [lo, c] : newest->buckets) delta[lo] = c;
  if (oldest != nullptr) {
    for (const auto& [lo, c] : oldest->buckets) {
      auto it = delta.find(lo);
      if (it != delta.end()) it->second -= std::min(it->second, c);
    }
  }
  for (const auto& [lo, c] : delta) {
    if (c == 0) continue;
    w.buckets.emplace_back(lo, c);
    w.count += c;
    w.sum += static_cast<std::uint64_t>(lo) * c;  // bucket-floor approximation
  }
  if (!w.buckets.empty()) {
    w.min = static_cast<std::uint64_t>(w.buckets.front().first);
    w.max = static_cast<std::uint64_t>(
        hist_bucket_hi(hist_bucket(static_cast<std::uint64_t>(w.buckets.back().first))));
  }
  return w;
}

}  // namespace

TelemetryOptions TelemetryOptions::from_env(TelemetryOptions base) {
  base.interval_ms = std::max<std::uint64_t>(
      10, env_u64("BST_TELEMETRY_INTERVAL_MS", base.interval_ms));
  base.out = env_str("BST_TELEMETRY_OUT", base.out);
  base.prom = env_str("BST_TELEMETRY_PROM", base.prom);
  base.slo_p99_ms = env_f64("BST_SLO_P99_MS", base.slo_p99_ms);
  base.window_ticks = std::max<std::size_t>(
      1, static_cast<std::size_t>(env_u64("BST_TELEMETRY_WINDOW", base.window_ticks)));
  return base;
}

TelemetrySnapshot telemetry_capture(std::uint64_t ts_ns) {
  TelemetrySnapshot s;
  s.ts_ns = ts_ns;
  s.counters = Metrics::counters_snapshot();
  s.gauges = Metrics::gauges_snapshot();
  s.histograms = Metrics::snapshot();
  return s;
}

TelemetryDerived telemetry_derive(const TelemetrySnapshot& oldest,
                                  const TelemetrySnapshot& newest,
                                  const TelemetryOptions& opt) {
  TelemetryDerived d;
  d.slo_p99_ms = opt.slo_p99_ms;
  d.window_s = newest.ts_ns > oldest.ts_ns
                   ? static_cast<double>(newest.ts_ns - oldest.ts_ns) * 1e-9
                   : 0.0;

  if (d.window_s > 0.0) {
    const CounterStats* c1 = find_counter(newest, opt.qps_counter);
    const CounterStats* c0 = find_counter(oldest, opt.qps_counter);
    const std::uint64_t v1 = c1 != nullptr ? c1->value : 0;
    const std::uint64_t v0 = c0 != nullptr ? c0->value : 0;
    if (v1 > v0) d.qps = static_cast<double>(v1 - v0) / d.window_s;
  }

  const HistogramStats w = window_hist(find_hist(oldest, opt.latency_hist),
                                       find_hist(newest, opt.latency_hist));
  d.window_count = w.count;
  if (w.count > 0) {
    d.p50_ms = w.quantile(0.50) * 1e-6;
    d.p99_ms = w.quantile(0.99) * 1e-6;
    if (opt.slo_p99_ms > 0.0) {
      const double slo_ns = opt.slo_p99_ms * 1e6;
      double bad = 0.0;
      for (const auto& [lo, c] : w.buckets) {
        const double hi = hist_bucket_hi(hist_bucket(static_cast<std::uint64_t>(lo)));
        if (lo >= slo_ns) {
          bad += static_cast<double>(c);
        } else if (hi > slo_ns) {
          // The SLO falls inside this bucket: apportion linearly.
          bad += static_cast<double>(c) * (hi - slo_ns) / (hi - lo);
        }
      }
      d.bad_fraction = bad / static_cast<double>(w.count);
      d.burn_rate = d.bad_fraction / 0.01;  // budget of a p99 target
    }
  }
  return d;
}

std::string telemetry_tick_json(std::uint64_t seq, const TelemetrySnapshot& snap,
                                const TelemetryDerived& d, double uptime_s,
                                double self_s) {
  Json tick = Json::object();
  tick.set("seq", Json::number(seq));
  tick.set("ts_ns", Json::number(snap.ts_ns));
  tick.set("uptime_s", Json::number(uptime_s));
  tick.set("telemetry_self_s", Json::number(self_s));
  tick.set("window_s", Json::number(d.window_s));
  tick.set("window_count", Json::number(d.window_count));
  tick.set("qps", Json::number(d.qps));
  tick.set("p50_ms", Json::number(d.p50_ms));
  tick.set("p99_ms", Json::number(d.p99_ms));
  tick.set("slo_p99_ms", Json::number(d.slo_p99_ms));
  tick.set("burn_rate", Json::number(d.burn_rate));

  std::vector<std::pair<std::string, std::uint64_t>> ctrs;
  for (const CounterStats& c : snap.counters) ctrs.emplace_back(c.name, c.value);
  std::sort(ctrs.begin(), ctrs.end());
  Json counters = Json::object();
  for (const auto& [name, value] : ctrs) counters.set(name, Json::number(value));
  tick.set("counters", std::move(counters));

  std::vector<std::pair<std::string, std::int64_t>> gs;
  for (const GaugeStats& g : snap.gauges) gs.emplace_back(g.name, g.value);
  std::sort(gs.begin(), gs.end());
  Json gauges = Json::object();
  for (const auto& [name, value] : gs) gauges.set(name, Json::number(value));
  tick.set("gauges", std::move(gauges));

  std::vector<const HistogramStats*> hs;
  for (const HistogramStats& h : snap.histograms) hs.push_back(&h);
  std::sort(hs.begin(), hs.end(),
            [](const HistogramStats* a, const HistogramStats* b) { return a->name < b->name; });
  Json hists = Json::object();
  for (const HistogramStats* h : hs) {
    Json o = Json::object();
    o.set("count", Json::number(h->count));
    o.set("sum", Json::number(h->sum));
    o.set("min", Json::number(h->min));
    o.set("max", Json::number(h->max));
    o.set("p50", Json::number(h->p50));
    o.set("p95", Json::number(h->p95));
    o.set("p99", Json::number(h->p99));
    hists.set(h->name, std::move(o));
  }
  tick.set("histograms", std::move(hists));
  return tick.dump_compact();
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string prometheus_exposition(const TelemetrySnapshot& snap, const TelemetryDerived& d,
                                  double uptime_s, double self_s) {
  std::ostringstream os;

  std::vector<std::pair<std::string, std::uint64_t>> ctrs;
  for (const CounterStats& c : snap.counters) ctrs.emplace_back(prom_name(c.name), c.value);
  std::sort(ctrs.begin(), ctrs.end());
  for (const auto& [name, value] : ctrs) {
    os << "# HELP " << name << "_total "
       << prom_escape_help("Monotonic counter from the bst metrics registry.") << "\n";
    os << "# TYPE " << name << "_total counter\n";
    os << name << "_total " << value << "\n";
  }

  std::vector<std::pair<std::string, std::string>> gs;
  for (const GaugeStats& g : snap.gauges) {
    gs.emplace_back(prom_name(g.name), std::to_string(g.value));
  }
  gs.emplace_back("bst_qps", num(d.qps));
  gs.emplace_back("bst_p50_ms", num(d.p50_ms));
  gs.emplace_back("bst_p99_ms", num(d.p99_ms));
  gs.emplace_back("bst_slo_p99_ms", num(d.slo_p99_ms));
  gs.emplace_back("bst_burn_rate", num(d.burn_rate));
  gs.emplace_back("bst_uptime_seconds", num(uptime_s));
  gs.emplace_back("bst_telemetry_self_seconds", num(self_s));
  std::sort(gs.begin(), gs.end());
  for (const auto& [name, value] : gs) {
    os << "# HELP " << name << " " << prom_escape_help(gauge_help(name)) << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << value << "\n";
  }

  std::vector<std::pair<std::string, const HistogramStats*>> hs;
  for (const HistogramStats& h : snap.histograms) hs.emplace_back(prom_name(h.name), &h);
  std::sort(hs.begin(), hs.end());
  for (const auto& [name, h] : hs) {
    os << "# HELP " << name << " "
       << prom_escape_help("Log-bucketed summary (quantiles interpolated, <=25% bucket error).")
       << "\n";
    os << "# TYPE " << name << " summary\n";
    os << name << "{quantile=\"" << prom_escape_label("0.5") << "\"} " << num(h->p50) << "\n";
    os << name << "{quantile=\"" << prom_escape_label("0.95") << "\"} " << num(h->p95) << "\n";
    os << name << "{quantile=\"" << prom_escape_label("0.99") << "\"} " << num(h->p99) << "\n";
    os << name << "_sum " << h->sum << "\n";
    os << name << "_count " << h->count << "\n";
  }
  return os.str();
}

TelemetryExporter::TelemetryExporter(TelemetryOptions opt) : opt_(std::move(opt)) {}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::start() {
  if (!opt_.active()) return;
  Crashbox::install();          // env-gated no-ops: a telemetry-carrying
  StallGuard::start_from_env();  // process gets the post-mortem layer too
  std::lock_guard lock(mu_);
  if (running_) return;
  stop_ = false;
  ticks_ = 0;
  self_s_ = 0.0;
  start_ns_ = TraceClock::now_ns();
  window_.clear();
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void TelemetryExporter::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mu_);
  running_ = false;
}

bool TelemetryExporter::running() const {
  std::lock_guard lock(mu_);
  return running_;
}

std::uint64_t TelemetryExporter::ticks() const {
  std::lock_guard lock(mu_);
  return ticks_;
}

double TelemetryExporter::self_seconds() const {
  std::lock_guard lock(mu_);
  return self_s_;
}

void TelemetryExporter::run() {
  StallGuard::register_self("telemetry");
  std::uint64_t seq = 0;
  for (;;) {
    bool stopping = false;
    {
      StallGuard::idle();  // parked between ticks: not a stall
      std::unique_lock lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(opt_.interval_ms),
                   [&] { return stop_; });
      stopping = stop_;
    }
    StallGuard::beat();
    tick(seq++);
    if (stopping) {
      StallGuard::idle();
      return;  // one final tick on stop(): short runs still observe
    }
  }
}

void TelemetryExporter::tick(std::uint64_t seq) {
  const std::uint64_t t0 = TraceClock::now_ns();
  const TelemetrySnapshot snap = telemetry_capture(t0);
  TelemetrySnapshot oldest;
  double uptime_s = 0.0, self_before = 0.0;
  {
    std::lock_guard lock(mu_);
    window_.push_back(snap);
    // window_ticks deltas need window_ticks + 1 snapshots.
    while (window_.size() > opt_.window_ticks + 1) window_.erase(window_.begin());
    oldest = window_.front();
    uptime_s = static_cast<double>(t0 - start_ns_) * 1e-9;
    self_before = self_s_;
  }
  const TelemetryDerived d = telemetry_derive(oldest, snap, opt_);
  const std::string line = telemetry_tick_json(seq, snap, d, uptime_s, self_before);
  // Publish to the crashbox seqlock buffer: a crash report carries the most
  // recent tick even though the exporter thread dies with the process.
  Crashbox::set_last_tick(line.data(), line.size());
  if (!opt_.out.empty()) {
    std::ofstream f(opt_.out, std::ios::app);
    if (f) f << line << '\n';
  }
  if (!opt_.prom.empty()) {
    // Atomic replace: scrapers never see a half-written exposition.
    const std::string tmp = opt_.prom + ".tmp";
    {
      std::ofstream f(tmp, std::ios::trunc);
      if (!f) return;
      f << prometheus_exposition(snap, d, uptime_s, self_before);
    }
    std::rename(tmp.c_str(), opt_.prom.c_str());
  }
  Metrics::add(kTicks);
  const std::uint64_t t1 = TraceClock::now_ns();
  std::lock_guard lock(mu_);
  ++ticks_;
  self_s_ += static_cast<double>(t1 - t0) * 1e-9;
}

}  // namespace bst::util
