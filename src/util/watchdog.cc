#include "util/watchdog.h"

#include <cmath>
#include <mutex>

#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace bst::util {
namespace {

struct State {
  std::mutex mu;
  std::vector<Warning> log;
  std::uint64_t total = 0;
};

State& state() {
  static State s;
  return s;
}

// Every warn() lands in this counter, tracer on or off, so long-running
// services surface numerical-health events in their counters/telemetry even
// when no profiled run is watching (the structured log stays tracer-gated).
CtrId warn_counter() {
  static const CtrId id = Metrics::counter("watchdog_warnings");
  return id;
}

}  // namespace

WatchdogLimits& Watchdog::limits() {
  static WatchdogLimits l;
  return l;
}

void Watchdog::warn(const std::string& code, std::int64_t step, double value,
                    double threshold) {
  Metrics::add(warn_counter());
  if (!Tracer::enabled()) return;
  if (FlightRecorder::enabled()) {
    FlightRecorder::instant(Tracer::phase("warn:" + code), step, value, threshold);
  }
  State& s = state();
  std::lock_guard lock(s.mu);
  ++s.total;
  if (s.log.size() < limits().max_warnings) s.log.push_back({code, step, value, threshold});
}

void Watchdog::check_step(std::int64_t step, double min_hnorm, double max_generator,
                          double norm_ref) {
  if (!Tracer::enabled()) return;
  const WatchdogLimits& l = limits();
  if (std::fabs(min_hnorm) < l.hnorm_tol) {
    warn("near_singular_minor", step, min_hnorm, l.hnorm_tol);
  }
  if (norm_ref > 0.0 && max_generator > l.max_growth * norm_ref) {
    warn("generator_growth", step, max_generator / norm_ref, l.max_growth);
  }
}

void Watchdog::check_reflection(std::int64_t step, double reflection) {
  if (!Tracer::enabled()) return;
  const double r = std::fabs(reflection);
  if (r > limits().max_reflection) {
    warn("hyperbolic_rotation_near_1", step, r, limits().max_reflection);
  }
}

void Watchdog::check_refine(std::int64_t iterations, bool converged, double stall_ratio) {
  if (!Tracer::enabled()) return;
  if (stall_ratio > 0.5) warn("refine_stall", iterations, stall_ratio, 0.5);
  if (!converged) warn("refine_no_convergence", iterations, stall_ratio, 0.0);
}

void Watchdog::check_pcg(std::int64_t iterations, bool converged, double divergence_ratio) {
  if (!Tracer::enabled()) return;
  if (divergence_ratio > 10.0) warn("pcg_divergence", iterations, divergence_ratio, 10.0);
  if (!converged) warn("pcg_no_convergence", iterations, divergence_ratio, 0.0);
}

std::vector<Warning> Watchdog::snapshot() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.log;
}

std::uint64_t Watchdog::total() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.total;
}

void Watchdog::reset() {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.log.clear();
  s.total = 0;
}

}  // namespace bst::util
