#include "util/calibrate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

// util/ normally sits below la/, but the calibration must benchmark the
// exact gemm kernels the solver runs (la/blas3.cc), not a lookalike.
#include "la/blas.h"
#include "la/kernel_config.h"
#include "la/matrix.h"
#include "util/flops.h"
#include "util/ledger.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace bst::util {

std::string cpu_model_name() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    std::size_t start = colon + 1;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) ++start;
    if (start < line.size()) return line.substr(start);
  }
  return "unknown";
}

std::string machine_fingerprint() {
  std::ostringstream os;
  os << cpu_model_name() << '|' << std::thread::hardware_concurrency() << '|';
#if defined(__VERSION__)
  os << __VERSION__;
#endif
  os << '|';
#if defined(BST_BUILD_TYPE)
  os << BST_BUILD_TYPE;
#endif
  os << '|';
#if defined(BST_CXX_FLAGS)
  os << BST_CXX_FLAGS;
#endif
  // Kernel generation tag: bumped when la/ kernels change materially (e.g.
  // the packed/SIMD level-3 stack), so cached calibration ceilings measured
  // with older kernels are re-run instead of silently reused.
  os << "|k2";
  return fnv1a_hex(os.str());
}

namespace {

void fill_pattern(la::View v, double scale) {
  for (la::index_t j = 0; j < v.cols(); ++j)
    for (la::index_t i = 0; i < v.rows(); ++i)
      v(i, j) = scale * (1.0 + 0.001 * static_cast<double>((i * 7 + j * 13) % 97));
}

// Best-of sustained rate of one gemm shape, repeated until `min_seconds`
// of accumulated work (at least 3 calls so one scheduler hiccup cannot
// define the rate).
double bench_gemm(la::Op ta, la::CView a, la::CView b, la::View c, double flops_per_call,
                  double min_seconds) {
  double best = 0.0, total = 0.0;
  int calls = 0;
  while (total < min_seconds || calls < 3) {
    const double t0 = wall_seconds();
    la::gemm(ta, la::Op::None, 1.0, a, b, 0.0, c);
    const double dt = wall_seconds() - t0;
    total += dt;
    ++calls;
    if (dt > 0.0) best = std::max(best, flops_per_call / dt / 1e9);
    if (calls > 10000) break;  // degenerate clock resolution
  }
  return best;
}

double bench_stream_triad(std::size_t n, int reps) {
  std::vector<double> a(n, 0.0), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    c[i] = 2.0 - 0.001 * static_cast<double>(i % 89);
  }
  const double s = 3.0;
  double best = 0.0;
  double sink = 0.0;
  for (int r = 0; r < std::max(1, reps); ++r) {
    const double t0 = wall_seconds();
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
    const double dt = wall_seconds() - t0;
    sink += a[n / 2];
    if (dt > 0.0) best = std::max(best, 24.0 * static_cast<double>(n) / dt / 1e9);
  }
  // Keep the kernel observable so the triad loop cannot be elided.
  if (!std::isfinite(sink)) return 0.0;
  return best;
}

// Triad bandwidth at a fixed total working set (three arrays summing to
// `kib` KiB), with enough repetitions that cache-resident sizes are timed
// over `traffic_mb` of total traffic rather than one microsecond pass.
double bench_triad_at(double kib, double traffic_mb) {
  const std::size_t n = std::max<std::size_t>(256, static_cast<std::size_t>(kib * 1024.0 / 24.0));
  std::vector<double> a(n, 0.0), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    c[i] = 2.0 - 0.001 * static_cast<double>(i % 89);
  }
  const double bytes_per_pass = 24.0 * static_cast<double>(n);
  const int reps = std::max(5, static_cast<int>(traffic_mb * 1e6 / bytes_per_pass));
  const double s = 3.0;
  double best = 0.0, sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = wall_seconds();
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
    const double dt = wall_seconds() - t0;
    sink += a[n / 2];
    if (dt > 0.0) best = std::max(best, bytes_per_pass / dt / 1e9);
  }
  if (!std::isfinite(sink)) return 0.0;
  return best;
}

// Infers cache capacities from the bandwidth-vs-working-set curve: sizes
// that fit a cache level sustain a distinct bandwidth plateau, and each
// capacity estimate is the largest probed working set still on (a fraction
// of) the plateau above it.  Thresholds are relative -- machines differ in
// absolute bandwidth -- and deliberately conservative: KernelConfig::tuned()
// prefers an underestimate (smaller blocks) to thrashing.
void infer_cache_sizes(const CalibrationOptions& opt, Calibration& cal) {
  if (opt.cache_probe_kib.size() < 3) return;
  std::vector<double> kib, gbs;
  for (const std::int64_t k : opt.cache_probe_kib) {
    if (k <= 0) continue;
    kib.push_back(static_cast<double>(k));
    gbs.push_back(bench_triad_at(static_cast<double>(k), opt.cache_probe_mb));
  }
  if (kib.size() < 3) return;
  const double peak = *std::max_element(gbs.begin(), gbs.end());
  const double dram = gbs.back();  // largest probe ~ memory-resident
  if (peak <= 0.0 || dram <= 0.0) return;
  for (std::size_t i = 0; i < kib.size(); ++i) {
    if (gbs[i] >= 0.60 * peak) cal.l1d_kib = kib[i];
    if (gbs[i] >= std::max(0.25 * peak, 2.0 * dram)) cal.l2_kib = kib[i];
    if (gbs[i] >= 1.4 * dram) cal.lshared_kib = kib[i];
  }
  // A flat curve (bandwidth-starved VM, single cache level) gives no usable
  // knees; report unknown rather than a guess equal to the largest probe.
  // Likewise a non-nested result (noisy curve putting the l1d knee above
  // the l2 knee): an inconsistent hierarchy would mistune the kernel
  // blocking, so discard all three.
  if (peak < 1.4 * dram || cal.l1d_kib <= 0.0 || cal.l1d_kib > cal.l2_kib ||
      cal.l2_kib > cal.lshared_kib) {
    cal.l1d_kib = cal.l2_kib = cal.lshared_kib = 0.0;
  }
}

double bench_span_overhead_ns(int samples) {
  if (samples <= 0) return 0.0;
  const PhaseId id = Tracer::phase("calibration_span");
  const bool was_enabled = Tracer::enabled();
  Tracer::enable();
  double t0 = wall_seconds();
  for (int i = 0; i < samples; ++i) {
    TraceSpan span(id);
  }
  const double on_s = wall_seconds() - t0;
  Tracer::disable();
  t0 = wall_seconds();
  for (int i = 0; i < samples; ++i) {
    TraceSpan span(id);
  }
  const double off_s = wall_seconds() - t0;
  if (was_enabled) Tracer::enable();
  return std::max(0.0, (on_s - off_s) / static_cast<double>(samples) * 1e9);
}

}  // namespace

Calibration run_calibration(const CalibrationOptions& opt) {
  Calibration cal;
  cal.cpu_model = cpu_model_name();
  cal.hardware_concurrency = std::thread::hardware_concurrency();
  cal.fingerprint = machine_fingerprint();
  cal.utc = utc_timestamp();

  for (const std::int64_t m64 : opt.block_sizes) {
    const la::index_t m = static_cast<la::index_t>(std::max<std::int64_t>(1, m64));
    // Panel width: a few MFLOP per call, never narrower than the trailing
    // panels the factorization itself produces.
    const la::index_t cols = std::clamp<la::index_t>(
        static_cast<la::index_t>(2000000 / std::max<la::index_t>(1, 4 * m * m)), 4 * m, 500000);
    la::Mat yg(2 * m, m), g(2 * m, cols), z(m, cols);
    fill_pattern(yg.view(), 1.0);
    fill_pattern(g.view(), 0.5);
    // Z = Y^T [A; B]: the (2m x m)^T (2m x L) panel product of every
    // block-reflector application (eqs. 29-32).
    GemmPoint yt;
    yt.m = m;
    yt.cols = cols;
    yt.shape = "yt_g";
    yt.gflops = bench_gemm(la::Op::Trans, yg.view(), g.view(), z.view(),
                           4.0 * static_cast<double>(m) * static_cast<double>(m) *
                               static_cast<double>(cols),
                           opt.min_gemm_seconds);
    cal.gemm.push_back(yt);
    // B += V_low Z: the square (m x m)(m x L) update.
    la::Mat v(m, m), out(m, cols);
    fill_pattern(v.view(), 1.0);
    GemmPoint vz;
    vz.m = m;
    vz.cols = cols;
    vz.shape = "v_z";
    vz.gflops = bench_gemm(la::Op::None, v.view(), z.view(), out.view(),
                           2.0 * static_cast<double>(m) * static_cast<double>(m) *
                               static_cast<double>(cols),
                           opt.min_gemm_seconds);
    cal.gemm.push_back(vz);
    cal.peak_gflops = std::max({cal.peak_gflops, yt.gflops, vz.gflops});
  }

  cal.stream_gbs = bench_stream_triad(opt.stream_doubles, opt.stream_reps);
  infer_cache_sizes(opt, cal);
  cal.span_overhead_ns = bench_span_overhead_ns(opt.span_samples);

  // The span probe charged calls/latencies into the process-wide tracer
  // state; a later profiled run must not inherit them.
  Tracer::reset();
  Metrics::reset();
  return cal;
}

Json Calibration::to_json() const {
  Json doc = Json::object();
  doc.set("calibration_version", Json::number(static_cast<std::int64_t>(1)));
  doc.set("utc", Json::string(utc));
  doc.set("cpu_model", Json::string(cpu_model));
  doc.set("hardware_concurrency", Json::number(static_cast<std::uint64_t>(hardware_concurrency)));
  doc.set("fingerprint", Json::string(fingerprint));
  Json points = Json::array();
  for (const GemmPoint& p : gemm) {
    Json j = Json::object();
    j.set("m", Json::number(p.m));
    j.set("cols", Json::number(p.cols));
    j.set("shape", Json::string(p.shape));
    j.set("gflops", Json::number(p.gflops));
    points.push(std::move(j));
  }
  doc.set("gemm", std::move(points));
  doc.set("peak_gflops", Json::number(peak_gflops));
  doc.set("stream_gbs", Json::number(stream_gbs));
  doc.set("span_overhead_ns", Json::number(span_overhead_ns));
  doc.set("l1d_kib", Json::number(l1d_kib));
  doc.set("l2_kib", Json::number(l2_kib));
  doc.set("lshared_kib", Json::number(lshared_kib));
  return doc;
}

namespace {

double require_number(const Json& doc, const char* key) {
  const Json* v = doc.find(key);
  if (v == nullptr || v->kind() != Json::Kind::Number) {
    throw std::runtime_error(std::string("calibration: missing numeric field '") + key + "'");
  }
  return v->as_number();
}

std::string string_or(const Json& doc, const char* key, const std::string& fallback) {
  const Json* v = doc.find(key);
  return (v != nullptr && v->kind() == Json::Kind::String) ? v->as_string() : fallback;
}

double number_or(const Json& doc, const char* key, double fallback) {
  const Json* v = doc.find(key);
  return (v != nullptr && v->kind() == Json::Kind::Number) ? v->as_number() : fallback;
}

}  // namespace

Calibration Calibration::from_json(const Json& doc) {
  if (doc.kind() != Json::Kind::Object) {
    throw std::runtime_error("calibration: document is not an object");
  }
  Calibration cal;
  cal.cpu_model = string_or(doc, "cpu_model", "unknown");
  cal.hardware_concurrency =
      static_cast<unsigned>(require_number(doc, "hardware_concurrency"));
  cal.fingerprint = string_or(doc, "fingerprint", "");
  cal.utc = string_or(doc, "utc", "");
  cal.peak_gflops = require_number(doc, "peak_gflops");
  cal.stream_gbs = require_number(doc, "stream_gbs");
  cal.span_overhead_ns = require_number(doc, "span_overhead_ns");
  // Optional (profiles written before the cache sweep existed lack them).
  cal.l1d_kib = number_or(doc, "l1d_kib", 0.0);
  cal.l2_kib = number_or(doc, "l2_kib", 0.0);
  cal.lshared_kib = number_or(doc, "lshared_kib", 0.0);
  if (const Json* points = doc.find("gemm"); points != nullptr) {
    for (const Json& j : points->items()) {
      GemmPoint p;
      p.m = static_cast<std::int64_t>(require_number(j, "m"));
      p.cols = static_cast<std::int64_t>(require_number(j, "cols"));
      p.shape = string_or(j, "shape", "");
      p.gflops = require_number(j, "gflops");
      cal.gemm.push_back(std::move(p));
    }
  }
  return cal;
}

Calibration load_or_run_calibration(const std::string& path, const CalibrationOptions& opt) {
  if (!path.empty()) {
    std::ifstream f(path);
    if (f) {
      std::ostringstream os;
      os << f.rdbuf();
      try {
        Calibration cached = Calibration::from_json(parse_json(os.str()));
        if (cached.fingerprint == machine_fingerprint()) return cached;
      } catch (const std::exception&) {
        // Unparseable or foreign profile: fall through to re-measure.
      }
    }
  }
  Calibration fresh = run_calibration(opt);
  if (!path.empty()) {
    std::ofstream out(path);
    if (out) {
      fresh.to_json().write(out);
      out << '\n';
    }
  }
  return fresh;
}

void apply_kernel_tuning(const Calibration& cal) {
  la::KernelConfig cfg = la::KernelConfig::tuned(cal.l1d_kib, cal.l2_kib, cal.lshared_kib);
  // Environment overrides outrank the profile (docs/KERNELS.md precedence).
  la::KernelConfig::set_active(la::KernelConfig::from_env(cfg));
}

}  // namespace bst::util
