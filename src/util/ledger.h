// Cross-run perf ledger: one compact JSONL line per solve/bench run, plus
// the trend analysis `bst_report --trend` prints over it.
//
// The ROADMAP's "measurably faster" needs a baseline *history*, not just a
// pairwise diff: accuracy drift of the kind Bojanczyk et al. analyze for
// Bareiss/Schur-type factorizations is only visible as a trend.  Every
// instrumented binary takes `--ledger=<file>` and appends one line:
//
//   {"utc":"2026-08-05T12:00:00Z","git":"<describe>","tool":"bst_solve",
//    "machine":"<fingerprint>","params_hash":"a1b2...","params":{...},
//    "phases":{"reflector_build":0.12,...},
//    "attainment":{"reflector_apply":0.41,...},
//    "metrics":{"time_s":0.5,"residual":1e-12,...},"warnings":0}
//
// Compatibility rule mirrors the report schema: fields are only ever
// *added* to the entry; readers must ignore unknown keys (additive-only,
// docs/OBSERVABILITY.md).  Lines that fail to parse are skipped by
// read_ledger so a corrupt line cannot poison the history.
//
// Trend semantics: per series ("phases.<name>" / "metrics.<name>" /
// "attainment.<name>") the last entry is compared against the *rolling
// median of all prior values*; a series regresses when
// (last - median) / median exceeds the same --max-regress gate the
// two-report diff uses, with --min-seconds as the noise floor on the
// median.  Attainment series gate in the opposite direction (a *drop* past
// the threshold regresses).  Entries whose "machine" fingerprint differs
// from the newest entry's are excluded (apples vs oranges across
// machines); entries predating the fingerprint field match anything.  The
// same guard applies to "params.solver_path": a PCG run and a full Schur
// factorization have incomparable phase profiles, so entries recording a
// different solver path than the newest entry's are excluded (counted in
// skipped_paths) rather than compared.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/report.h"

namespace bst::util {

/// Current UTC time as "YYYY-MM-DDTHH:MM:SSZ".
std::string utc_timestamp();

/// The git revision the binary was built from (CMake stamps BST_GIT_DESCRIBE
/// at configure time); "unknown" when built outside a checkout.
std::string build_git_revision();

/// FNV-1a 64-bit hash, hex-encoded; used to fingerprint the params object
/// so trend readers can group comparable runs.
std::string fnv1a_hex(const std::string& s);

/// Distills a built report document (PerfReport::build()) into one compact
/// ledger entry (phases collapse to their seconds; warnings to a count).
Json ledger_entry(const Json& report_doc);

/// Appends `ledger_entry(report_doc)` as one line to `path` (creates the
/// file; throws std::runtime_error when it cannot be opened).
void append_ledger(const std::string& path, const Json& report_doc);

/// Reads every parseable line of a ledger file, oldest first.  A missing
/// file is an error; malformed lines are skipped.
std::vector<Json> read_ledger(const std::string& path);

/// One series' history across the ledger.
struct TrendStat {
  std::string key;             // "phases.<x>", "metrics.<x>" or "attainment.<x>"
  std::vector<double> values;  // chronological (entries missing the key skip)
  double min = 0.0;
  double median = 0.0;         // median of all values
  double last = 0.0;
  double baseline = 0.0;       // rolling median of the values before `last`
  double rel = 0.0;            // (last - baseline) / baseline
  bool gated = false;          // series the --max-regress gate applies to
  bool higher_is_better = false;  // attainment series: a *drop* regresses
  bool regressed = false;      // gated && baseline >= min_seconds && rel > max
};

struct TrendReport {
  std::vector<TrendStat> series;  // sorted by key
  int regressions = 0;
  int skipped_machines = 0;  // entries excluded by fingerprint mismatch
  int skipped_paths = 0;     // entries excluded by solver-path mismatch
  // True when no gated series has a pre-history to compare against (fresh
  // ledger): nothing can regress, callers should say "insufficient
  // history" instead of "no regression".
  bool insufficient_history = true;
};

/// Computes per-series min/median/last and flags regressions of the last
/// entry against the rolling median.  Only time-denominated series are
/// gated ("phases.*" seconds and "metrics.time_s"/"metrics.sim_seconds");
/// everything else is reported but never fails the gate.  `max_regress < 0`
/// disables gating (same convention as the two-report diff).
TrendReport ledger_trend(const std::vector<Json>& entries, double max_regress,
                         double min_seconds);

}  // namespace bst::util
