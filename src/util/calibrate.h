// Machine calibration: self-contained microbenchmarks that measure this
// machine's ceilings with the *same kernels the solver runs*, cached to a
// JSON profile so CI can calibrate once per runner.
//
// Three ceilings matter for the attainment join (util/attainment.h):
//
//   gemm points    peak GEMM GFLOP/s across the block shapes the Schur
//                  algorithm actually produces: the Y^T [A; B] panel
//                  product (2m x m)^T (2m x L) and the V Z update
//                  (m x m)(m x L), for m in {1..64} by default.
//   stream_gbs     STREAM-triad bandwidth (a = b + s*c over arrays that
//                  exceed the last-level cache; 24 bytes per element).
//   span_overhead_ns  per-TraceSpan observability cost, measured as the
//                  tracer-on minus tracer-off time of an empty span loop.
//
// The profile carries the machine fingerprint (CPU model + core count +
// compiler + flags); load_or_run_calibration() re-measures when the cached
// profile was taken on a different machine or build.
//
// Calibrate *before* arming observability: the span-overhead loop drives
// the tracer, so run_calibration() resets Tracer and Metrics on exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/report.h"

namespace bst::util {

/// The CPU model string from /proc/cpuinfo ("unknown" when unavailable).
std::string cpu_model_name();

/// FNV-1a fingerprint of {cpu model, core count, compiler, build type,
/// flags}: two runs are perf-comparable only when their fingerprints match.
/// Stamped into every report ("machine.fingerprint") and ledger line.
std::string machine_fingerprint();

/// One GEMM microbenchmark point.
struct GemmPoint {
  std::int64_t m = 0;       // Schur block size the shape derives from
  std::int64_t cols = 0;    // panel width L
  std::string shape;        // "yt_g" (2m x m)^T (2m x L) or "v_z" (m x m)(m x L)
  double gflops = 0.0;      // best-of sustained rate
};

/// Knobs so tests can shrink the run to milliseconds.
struct CalibrationOptions {
  std::vector<std::int64_t> block_sizes = {1, 2, 4, 8, 16, 32, 64};
  double min_gemm_seconds = 0.02;       // accumulated per shape
  std::size_t stream_doubles = 1u << 21;  // per array (3 arrays, 16 MiB each)
  int stream_reps = 5;
  int span_samples = 200000;
  // Working-set sizes (total across the triad's three arrays, KiB) probed to
  // infer cache capacities; empty disables the sweep (cache fields stay 0).
  std::vector<std::int64_t> cache_probe_kib = {24,   48,   96,    192,   384,  768,
                                               1536, 3072, 6144, 12288, 24576};
  double cache_probe_mb = 48.0;  // traffic per probe point
};

/// A measured machine profile.
struct Calibration {
  std::string cpu_model;
  unsigned hardware_concurrency = 0;
  std::string fingerprint;   // machine_fingerprint() at measurement time
  std::string utc;           // when measured
  std::vector<GemmPoint> gemm;
  double peak_gflops = 0.0;      // max over the gemm points
  double stream_gbs = 0.0;       // triad bandwidth
  double span_overhead_ns = 0.0; // tracer-on minus tracer-off, per span
  // Cache capacities inferred from the triad working-set sweep (bandwidth
  // knees); 0 = unknown / sweep disabled.  Feed la::KernelConfig::tuned()
  // through apply_kernel_tuning().
  double l1d_kib = 0.0;
  double l2_kib = 0.0;
  double lshared_kib = 0.0;  // last-level (shared) cache

  [[nodiscard]] Json to_json() const;
  /// Throws std::runtime_error when required fields are missing.
  static Calibration from_json(const Json& doc);
};

/// Runs the microbenchmarks.  Resets Tracer/Metrics on exit (the span
/// probe pollutes them), so call before arming observability.
Calibration run_calibration(const CalibrationOptions& opt = {});

/// Cache wrapper: returns the profile stored at `path` when it parses and
/// its fingerprint matches this machine/build; otherwise runs a fresh
/// calibration and (best-effort) writes it back.  An empty path never
/// touches the filesystem.
Calibration load_or_run_calibration(const std::string& path,
                                    const CalibrationOptions& opt = {});

/// Derives level-3 kernel blocking from the profile's inferred cache sizes
/// and installs it as la::KernelConfig::active().  BST_KERNEL_* environment
/// overrides still win (they are re-applied on top).  Call once at startup,
/// after loading/running calibration and before the first kernel call.
void apply_kernel_tuning(const Calibration& cal);

}  // namespace bst::util
