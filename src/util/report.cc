#include "util/report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/calibrate.h"
#include "util/metrics.h"
#include "util/prof.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::util {

// ----- Json value ----------------------------------------------------------

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.num_ = v;
  return j;
}

Json Json::number(std::uint64_t v) { return number(static_cast<double>(v)); }
Json Json::number(std::int64_t v) { return number(static_cast<double>(v)); }

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

void Json::push(Json v) { arr_.push_back(std::move(v)); }

void Json::set(const std::string& key, Json v) {
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan: encode as null (documented in OBSERVABILITY.md).
    os << "null";
    return;
  }
  // Integral values print without an exponent or trailing ".0" so counters
  // stay exact and diffable.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    os << buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void indent_to(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << ' ';
}

}  // namespace

void Json::write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::Null: os << "null"; return;
    case Kind::Bool: os << (bool_ ? "true" : "false"); return;
    case Kind::Number: write_number(os, num_); return;
    case Kind::String: write_escaped(os, str_); return;
    case Kind::Array: {
      if (arr_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        indent_to(os, indent + 2);
        arr_[i].write(os, indent + 2);
        if (i + 1 < arr_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << ']';
      return;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent_to(os, indent + 2);
        write_escaped(os, obj_[i].first);
        os << ": ";
        obj_[i].second.write(os, indent + 2);
        if (i + 1 < obj_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void Json::write_compact(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null: os << "null"; return;
    case Kind::Bool: os << (bool_ ? "true" : "false"); return;
    case Kind::Number: write_number(os, num_); return;
    case Kind::String: write_escaped(os, str_); return;
    case Kind::Array: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << ',';
        arr_[i].write_compact(os);
      }
      os << ']';
      return;
    }
    case Kind::Object: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) os << ',';
        write_escaped(os, obj_[i].first);
        os << ':';
        obj_[i].second.write_compact(os);
      }
      os << '}';
      return;
    }
  }
}

std::string Json::dump_compact() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

// ----- parser --------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json::string(string_body());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json::null();
    }
    return number();
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = string_body();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return Json::number(std::stod(s_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_json(const std::string& text) { return Parser(text).parse(); }

// ----- PerfReport ----------------------------------------------------------

PerfReport::PerfReport(std::string tool) : tool_(std::move(tool)) {}

void PerfReport::param(const std::string& key, const std::string& value) {
  params_.set(key, Json::string(value));
}

void PerfReport::param(const std::string& key, std::int64_t value) {
  params_.set(key, Json::number(value));
}

void PerfReport::param(const std::string& key, double value) {
  params_.set(key, Json::number(value));
}

void PerfReport::metric(const std::string& key, double value) {
  metrics_.set(key, Json::number(value));
}

void PerfReport::add_table(const Table& table) {
  Json t = Json::object();
  t.set("title", Json::string(table.title()));
  Json cols = Json::array();
  for (const std::string& h : table.header_labels()) cols.push(Json::string(h));
  t.set("columns", std::move(cols));
  Json rows = Json::array();
  for (const auto& r : table.data()) {
    Json row = Json::array();
    for (const Cell& c : r) {
      if (std::holds_alternative<std::string>(c)) {
        row.push(Json::string(std::get<std::string>(c)));
      } else if (std::holds_alternative<long long>(c)) {
        row.push(Json::number(static_cast<std::int64_t>(std::get<long long>(c))));
      } else {
        row.push(Json::number(std::get<double>(c)));
      }
    }
    rows.push(std::move(row));
  }
  t.set("rows", std::move(rows));
  tables_.push(std::move(t));
}

void PerfReport::add_thread(double busy_seconds, double idle_seconds, std::uint64_t chunks) {
  Json t = Json::object();
  t.set("busy_seconds", Json::number(busy_seconds));
  t.set("idle_seconds", Json::number(idle_seconds));
  t.set("chunks", Json::number(chunks));
  threads_.push(std::move(t));
}

void PerfReport::add_pe_comm(double bytes_sent, double bytes_recv, double messages) {
  Json p = Json::object();
  p.set("bytes_sent", Json::number(bytes_sent));
  p.set("bytes_recv", Json::number(bytes_recv));
  p.set("messages", Json::number(messages));
  comm_.push(std::move(p));
}

void PerfReport::add_par_analysis(const ParAnalysis& a) {
  Json tl = Json::object();
  tl.set("makespan", Json::number(a.makespan));
  tl.set("imbalance", Json::number(a.imbalance));
  Json per_pe = Json::array();
  for (const PeUsage& u : a.per_pe) {
    Json p = Json::object();
    p.set("compute", Json::number(u.compute));
    p.set("send", Json::number(u.send));
    p.set("recv", Json::number(u.recv));
    p.set("broadcast", Json::number(u.broadcast));
    p.set("barrier", Json::number(u.barrier));
    p.set("idle", Json::number(u.idle));
    per_pe.push(std::move(p));
  }
  tl.set("per_pe", std::move(per_pe));
  pe_timeline_ = std::move(tl);

  Json cm = Json::object();
  Json rows = Json::array();
  for (const auto& row : a.comm_matrix) {
    Json r = Json::array();
    for (const double v : row) r.push(Json::number(v));
    rows.push(std::move(r));
  }
  cm.set("bytes", std::move(rows));
  comm_matrix_ = std::move(cm);

  Json cp = Json::object();
  cp.set("seconds", Json::number(a.critical_path_seconds));
  cp.set("slack", Json::number(a.critical_slack));
  cp.set("consistent", Json::boolean(a.consistent()));
  Json by_kind = Json::object();
  for (std::size_t k = 0; k < a.critical_by_kind.size(); ++k) {
    if (a.critical_by_kind[k] > 0.0) {
      by_kind.set(to_string(static_cast<SpanKind>(k)), Json::number(a.critical_by_kind[k]));
    }
  }
  cp.set("by_kind", std::move(by_kind));
  Json segs = Json::array();
  for (const CritSegment& seg : a.critical_path) {
    Json j = Json::object();
    j.set("pe", Json::number(static_cast<std::int64_t>(seg.pe)));
    j.set("kind", Json::string(to_string(seg.kind)));
    j.set("first_step", Json::number(seg.first_step));
    j.set("last_step", Json::number(seg.last_step));
    j.set("seconds", Json::number(seg.seconds));
    segs.push(std::move(j));
  }
  cp.set("segments", std::move(segs));
  critical_path_ = std::move(cp);
}

void PerfReport::set_attainment(Json attainment) { attainment_ = std::move(attainment); }

void PerfReport::set_extra(const std::string& key, Json value) { extra_.set(key, std::move(value)); }

Json PerfReport::build(bool include_tracer) const {
  Json root = Json::object();
  root.set("schema_version", Json::number(static_cast<std::int64_t>(kReportSchemaVersion)));
  root.set("tool", Json::string(tool_));
  if (!params_.members().empty()) root.set("params", params_);

  Json machine = Json::object();
  machine.set("hardware_concurrency",
              Json::number(static_cast<std::uint64_t>(std::thread::hardware_concurrency())));
  machine.set("pointer_bits", Json::number(static_cast<std::uint64_t>(8 * sizeof(void*))));
  // Provenance so cross-machine trend comparisons can be detected and
  // skipped (util/calibrate.h; the fingerprint also keys calibration
  // caches and rides into every ledger line).
  machine.set("cpu_model", Json::string(cpu_model_name()));
  machine.set("fingerprint", Json::string(machine_fingerprint()));
  root.set("machine", std::move(machine));

  Json buildinfo = Json::object();
#if defined(__VERSION__)
  buildinfo.set("compiler", Json::string(__VERSION__));
#endif
#if defined(BST_BUILD_TYPE)
  buildinfo.set("build_type", Json::string(BST_BUILD_TYPE));
#endif
#if defined(BST_CXX_FLAGS)
  buildinfo.set("flags", Json::string(BST_CXX_FLAGS));
#endif
  buildinfo.set("cxx", Json::number(static_cast<std::int64_t>(__cplusplus)));
  root.set("build", std::move(buildinfo));

  if (include_tracer) {
    // Phase interning, histogram registration and warning arrival orders
    // all depend on thread timing; sort every keyed section so identical
    // runs serialize byte-identically (and bst_report diffs stay stable).
    Json phases = Json::object();
    std::vector<PhaseStats> phase_stats = Tracer::snapshot();
    std::sort(phase_stats.begin(), phase_stats.end(),
              [](const PhaseStats& x, const PhaseStats& y) { return x.name < y.name; });
    // Hardware-truth join (util/prof): phases that accumulated PMU deltas
    // carry the measured counters next to the modeled flops/bytes.
    // `measured_bytes` estimates DRAM traffic as LLC misses x 64-byte
    // lines; attainment_section() joins it against the modeled bytes.
    std::map<std::string, PmuCounts> pmu_by_name;
    if (Prof::was_armed()) {
      const std::vector<std::string> phase_names = Tracer::phase_names();
      for (const PhasePmu& pp : Prof::pmu_snapshot()) {
        if (pp.id >= 0 && static_cast<std::size_t>(pp.id) < phase_names.size()) {
          pmu_by_name[phase_names[static_cast<std::size_t>(pp.id)]] = pp.c;
        }
      }
    }
    for (const PhaseStats& ps : phase_stats) {
      Json p = Json::object();
      p.set("calls", Json::number(ps.calls));
      p.set("seconds", Json::number(ps.seconds));
      p.set("flops", Json::number(ps.flops));
      p.set("bytes", Json::number(ps.bytes));
      if (const auto it = pmu_by_name.find(ps.name); it != pmu_by_name.end()) {
        const PmuCounts& c = it->second;
        p.set("cycles", Json::number(c.cycles));
        p.set("instructions", Json::number(c.instructions));
        if (c.cycles > 0) {
          p.set("ipc", Json::number(static_cast<double>(c.instructions) /
                                    static_cast<double>(c.cycles)));
        }
        p.set("stalled_cycles", Json::number(c.stalled_cycles));
        p.set("branch_misses", Json::number(c.branch_misses));
        p.set("l1d_loads", Json::number(c.l1d_loads));
        p.set("l1d_misses", Json::number(c.l1d_misses));
        if (c.l1d_loads > 0) {
          p.set("l1d_miss_rate", Json::number(static_cast<double>(c.l1d_misses) /
                                              static_cast<double>(c.l1d_loads)));
        }
        p.set("llc_loads", Json::number(c.llc_loads));
        p.set("llc_misses", Json::number(c.llc_misses));
        if (c.llc_loads > 0) {
          p.set("llc_miss_rate", Json::number(static_cast<double>(c.llc_misses) /
                                              static_cast<double>(c.llc_loads)));
        }
        p.set("measured_bytes", Json::number(c.llc_misses * 64));
      }
      phases.set(ps.name, std::move(p));
    }
    if (!phases.members().empty()) root.set("phases", std::move(phases));
    if (Prof::was_armed()) root.set("prof", Prof::section_json());

    Json steps = Json::array();
    for (const StepDiag& sd : Tracer::steps()) {
      Json s = Json::object();
      s.set("step", Json::number(static_cast<std::int64_t>(sd.step)));
      s.set("min_hnorm", Json::number(sd.min_hnorm));
      s.set("max_generator", Json::number(sd.max_generator));
      steps.push(std::move(s));
    }
    if (!steps.items().empty()) root.set("steps", std::move(steps));

    Json hists = Json::object();
    std::vector<HistogramStats> hist_stats = Metrics::snapshot();
    std::sort(hist_stats.begin(), hist_stats.end(),
              [](const HistogramStats& x, const HistogramStats& y) { return x.name < y.name; });
    for (const HistogramStats& hs : hist_stats) {
      Json h = Json::object();
      h.set("count", Json::number(hs.count));
      h.set("min", Json::number(hs.min));
      h.set("max", Json::number(hs.max));
      h.set("mean", Json::number(hs.mean()));
      h.set("p50", Json::number(hs.p50));
      h.set("p95", Json::number(hs.p95));
      h.set("p99", Json::number(hs.p99));
      Json buckets = Json::array();
      for (const auto& [lo, c] : hs.buckets) {
        Json b = Json::array();
        b.push(Json::number(lo));
        b.push(Json::number(c));
        buckets.push(std::move(b));
      }
      h.set("buckets", std::move(buckets));
      hists.set(hs.name, std::move(h));
    }
    if (!hists.members().empty()) root.set("histograms", std::move(hists));

    Json warnings = Json::array();
    std::vector<Warning> warns = Watchdog::snapshot();
    std::sort(warns.begin(), warns.end(), [](const Warning& x, const Warning& y) {
      if (x.step != y.step) return x.step < y.step;
      if (x.code != y.code) return x.code < y.code;
      if (x.value != y.value) return x.value < y.value;
      return x.threshold < y.threshold;
    });
    for (const Warning& w : warns) {
      Json j = Json::object();
      j.set("code", Json::string(w.code));
      j.set("step", Json::number(static_cast<std::int64_t>(w.step)));
      j.set("value", Json::number(w.value));
      j.set("threshold", Json::number(w.threshold));
      warnings.push(std::move(j));
    }
    const std::uint64_t kept = warnings.items().size();
    if (kept > 0) root.set("warnings", std::move(warnings));
    const std::uint64_t dropped = Watchdog::total() - std::min(Watchdog::total(), kept);
    if (dropped > 0) root.set("warnings_dropped", Json::number(dropped));
  }

  // Counters accumulate whether or not the tracer ran (like the pool's
  // chunk counts), so they are reported even in an untraced run.
  Json counters = Json::object();
  std::vector<CounterStats> ctr_stats = Metrics::counters_snapshot();
  std::sort(ctr_stats.begin(), ctr_stats.end(),
            [](const CounterStats& x, const CounterStats& y) { return x.name < y.name; });
  for (const CounterStats& cs : ctr_stats) counters.set(cs.name, Json::number(cs.value));
  if (!counters.members().empty()) root.set("counters", std::move(counters));

  // Gauges are instantaneous, so the report records them as "state at write
  // time" -- nonzero readings only, to keep single-run reports quiet.
  Json gauges = Json::object();
  std::vector<GaugeStats> gauge_stats = Metrics::gauges_snapshot();
  std::sort(gauge_stats.begin(), gauge_stats.end(),
            [](const GaugeStats& x, const GaugeStats& y) { return x.name < y.name; });
  for (const GaugeStats& gs : gauge_stats) {
    if (gs.value != 0) gauges.set(gs.name, Json::number(gs.value));
  }
  if (!gauges.members().empty()) root.set("gauges", std::move(gauges));

  for (const auto& [key, value] : extra_.members()) root.set(key, value);
  if (!threads_.items().empty()) root.set("threads", threads_);
  if (!comm_.items().empty()) root.set("comm", comm_);
  if (pe_timeline_.kind() == Json::Kind::Object) root.set("pe_timeline", pe_timeline_);
  if (comm_matrix_.kind() == Json::Kind::Object) root.set("comm_matrix", comm_matrix_);
  if (critical_path_.kind() == Json::Kind::Object) root.set("critical_path", critical_path_);
  if (attainment_.kind() == Json::Kind::Object) root.set("attainment", attainment_);
  if (!metrics_.members().empty()) root.set("metrics", metrics_);
  if (!tables_.items().empty()) root.set("tables", tables_);
  return root;
}

void PerfReport::write(std::ostream& os, bool include_tracer) const {
  build(include_tracer).write(os);
  os << '\n';
}

void PerfReport::write_file(const std::string& path, bool include_tracer) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("PerfReport: cannot open '" + path + "' for writing");
  write(f, include_tracer);
}

}  // namespace bst::util
