#include "util/par_analysis.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/flight_recorder.h"
#include "util/trace.h"

namespace bst::util {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kSend: return "shift_send";
    case SpanKind::kRecv: return "shift_recv";
    case SpanKind::kBroadcast: return "broadcast";
    case SpanKind::kBroadcastRecv: return "broadcast_recv";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kIdle: return "idle";
  }
  return "?";
}

namespace {

constexpr int kNumKinds = 7;

void usage_add(PeUsage& u, SpanKind k, double dt) {
  switch (k) {
    case SpanKind::kCompute: u.compute += dt; break;
    case SpanKind::kSend: u.send += dt; break;
    case SpanKind::kRecv: u.recv += dt; break;
    case SpanKind::kBroadcast:
    case SpanKind::kBroadcastRecv: u.broadcast += dt; break;
    case SpanKind::kBarrier: u.barrier += dt; break;
    case SpanKind::kIdle: u.idle += dt; break;
  }
}

// Predecessor preference along the critical path: when several spans end
// exactly where the current one starts (a barrier release matches every
// arriving PE), attribute the path to real work first and idle time last.
int kind_priority(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute: return 0;
    case SpanKind::kSend: return 1;
    case SpanKind::kBroadcast: return 2;
    case SpanKind::kRecv: return 3;
    case SpanKind::kBroadcastRecv: return 4;
    case SpanKind::kBarrier: return 5;
    case SpanKind::kIdle: return 6;
  }
  return 7;
}

}  // namespace

ParAnalysis analyze_schedule(const ParSchedule& sched) {
  ParAnalysis a;
  const int np = std::max(sched.np, 1);
  a.per_pe.assign(static_cast<std::size_t>(np), PeUsage{});
  a.comm_matrix.assign(static_cast<std::size_t>(np),
                       std::vector<double>(static_cast<std::size_t>(np), 0.0));
  a.critical_by_kind.assign(kNumKinds, 0.0);
  if (sched.empty()) return a;

  for (const PeSpan& s : sched.spans) {
    a.makespan = std::max(a.makespan, s.t1);
    if (s.pe >= 0 && s.pe < np) {
      usage_add(a.per_pe[static_cast<std::size_t>(s.pe)], s.kind, s.seconds());
    }
    if ((s.kind == SpanKind::kRecv || s.kind == SpanKind::kBroadcastRecv) && s.peer >= 0 &&
        s.peer < np && s.pe >= 0 && s.pe < np) {
      a.comm_matrix[static_cast<std::size_t>(s.peer)][static_cast<std::size_t>(s.pe)] += s.bytes;
    }
  }

  double max_compute = 0.0, sum_compute = 0.0;
  for (const PeUsage& u : a.per_pe) {
    max_compute = std::max(max_compute, u.compute);
    sum_compute += u.compute;
  }
  a.imbalance = sum_compute > 0.0 ? max_compute / (sum_compute / np) : 0.0;

  // ---- critical path -------------------------------------------------------
  // Dependency structure of the capture: every span starts at its PE's
  // clock and every clock advance is a max() against a predecessor's end
  // time, so the critical predecessor of a span is exactly a span whose end
  // equals its start (same PE, or the sender/straggler across PEs).  Walk
  // back from the span that ends at the makespan, matching end times within
  // a tolerance; zero-length spans carry no time and are skipped.
  std::vector<const PeSpan*> by_end;
  by_end.reserve(sched.spans.size());
  for (const PeSpan& s : sched.spans) {
    if (s.seconds() > 0.0) by_end.push_back(&s);
  }
  if (by_end.empty()) return a;
  std::sort(by_end.begin(), by_end.end(),
            [](const PeSpan* x, const PeSpan* y) { return x->t1 < y->t1; });

  const double tol = std::max(1e-12, a.makespan * 1e-12);
  const PeSpan* cur = nullptr;
  // Start from the latest-ending span (preferring real work on ties).
  {
    double best_t1 = by_end.back()->t1;
    for (auto it = by_end.rbegin(); it != by_end.rend() && (*it)->t1 >= best_t1 - tol; ++it) {
      if (cur == nullptr || kind_priority((*it)->kind) < kind_priority(cur->kind)) cur = *it;
    }
  }

  std::vector<const PeSpan*> chain;
  const std::size_t max_chain = sched.spans.size() + 1;  // cycle guard
  while (cur != nullptr && chain.size() < max_chain) {
    chain.push_back(cur);
    const double target = cur->t0;
    if (target <= tol) break;
    // All positive-length spans ending within tol of `target`.
    auto lo = std::lower_bound(by_end.begin(), by_end.end(), target - tol,
                               [](const PeSpan* s, double t) { return s->t1 < t; });
    const PeSpan* best = nullptr;
    for (auto it = lo; it != by_end.end() && (*it)->t1 <= target + tol; ++it) {
      const PeSpan* s = *it;
      if (s == cur || s->t0 >= target - tol) continue;  // must carry time backwards
      if (best == nullptr) {
        best = s;
        continue;
      }
      const int ps = kind_priority(s->kind), pb = kind_priority(best->kind);
      if (ps < pb || (ps == pb && s->pe == cur->pe && best->pe != cur->pe)) best = s;
    }
    cur = best;
  }
  std::reverse(chain.begin(), chain.end());

  for (const PeSpan* s : chain) {
    a.critical_path_seconds += s->seconds();
    a.critical_by_kind[static_cast<std::size_t>(s->kind)] += s->seconds();
    if (!a.critical_path.empty() && a.critical_path.back().pe == s->pe &&
        a.critical_path.back().kind == s->kind) {
      CritSegment& seg = a.critical_path.back();
      seg.seconds += s->seconds();
      seg.first_step = std::min(seg.first_step, s->step);
      seg.last_step = std::max(seg.last_step, s->step);
    } else {
      a.critical_path.push_back({s->pe, s->kind, s->step, s->step, s->seconds()});
    }
  }
  a.critical_slack = a.makespan - a.critical_path_seconds;
  return a;
}

void emit_schedule(const ParSchedule& sched) {
  if (!FlightRecorder::enabled() || sched.empty()) return;

  static const PhaseId kKindPhase[kNumKinds] = {
      Tracer::phase("compute"),       Tracer::phase("shift_send"),
      Tracer::phase("shift_recv"),    Tracer::phase("broadcast"),
      Tracer::phase("broadcast_recv"), Tracer::phase("barrier"),
      Tracer::phase("idle"),
  };

  // Replay per PE in start order so every virtual track's events are
  // chronological and its begin/end pairs nest trivially.
  std::vector<std::vector<const PeSpan*>> per_pe(static_cast<std::size_t>(std::max(sched.np, 1)));
  for (const PeSpan& s : sched.spans) {
    if (s.seconds() <= 0.0) continue;  // zero-length: matrix-only records
    if (s.pe < 0 || s.pe >= sched.np) continue;
    per_pe[static_cast<std::size_t>(s.pe)].push_back(&s);
  }
  for (int pe = 0; pe < sched.np; ++pe) {
    auto& spans = per_pe[static_cast<std::size_t>(pe)];
    if (spans.empty()) continue;
    std::stable_sort(spans.begin(), spans.end(), [](const PeSpan* x, const PeSpan* y) {
      return x->t0 < y->t0;
    });
    const std::uint32_t tid = FlightRecorder::virtual_track("pe:" + std::to_string(pe));
    std::uint64_t prev_end = 0;
    for (const PeSpan* s : spans) {
      // Virtual nanoseconds; clamp fp jitter so spans never overlap.
      std::uint64_t t0 = static_cast<std::uint64_t>(std::llround(s->t0 * 1e9));
      std::uint64_t t1 = static_cast<std::uint64_t>(std::llround(s->t1 * 1e9));
      t0 = std::max(t0, prev_end);
      t1 = std::max(t1, t0);
      prev_end = t1;
      FlightRecorder::virtual_span(tid, kKindPhase[static_cast<int>(s->kind)], s->step, t0, t1,
                                   static_cast<std::uint64_t>(s->bytes), s->peer);
    }
  }
}

}  // namespace bst::util
