#include "util/stallguard.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "util/crashbox.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::util {
namespace {

constexpr std::size_t kLabelMax = 48;

// Heartbeat slots.  beat_ns/busy/flagged are the hot fields (relaxed
// atomics); used/label/fr_tid change only at registration/release and are
// guarded by g_mu, which the monitor also takes per scan -- that keeps the
// label reads race-free under TSan without putting a lock on beat().
struct Slot {
  std::atomic<std::uint64_t> beat_ns{0};
  std::atomic<bool> busy{false};
  std::atomic<bool> flagged{false};
  bool used = false;
  std::uint32_t fr_tid = 0;
  char label[kLabelMax] = {};
};

Slot g_slots[StallGuard::kMaxThreads];
std::mutex g_mu;
std::atomic<std::uint64_t> g_slot_overflow{0};

CtrId stalls_ctr() {
  static const CtrId id = Metrics::counter("stalls_detected");
  return id;
}

GaugeId stalled_gauge() {
  static const GaugeId id = Metrics::gauge("stalled_threads");
  return id;
}

// Releases the slot when the registering thread exits, so pools that are
// torn down and rebuilt (tests) do not leak heartbeat slots.
struct SlotGuard {
  int slot = -1;
  ~SlotGuard() {
    if (slot < 0) return;
    std::lock_guard lock(g_mu);
    g_slots[slot].busy.store(false, std::memory_order_relaxed);
    g_slots[slot].flagged.store(false, std::memory_order_relaxed);
    g_slots[slot].used = false;
  }
};
thread_local SlotGuard tl_guard;

struct Monitor {
  std::mutex mu;
  std::condition_variable cv;
  std::thread th;
  bool stop_requested = false;
  bool running = false;
  StallGuardOptions opt;
};

Monitor& monitor() {
  static Monitor* m = new Monitor;  // leaked: outlives static teardown
  return *m;
}

std::uint64_t effective_poll_ms(const StallGuardOptions& opt) {
  std::uint64_t poll = opt.poll_ms != 0 ? opt.poll_ms : opt.stall_ms / 4;
  if (poll < 5) poll = 5;
  if (poll > 1000) poll = 1000;
  return poll;
}

}  // namespace

StallGuardOptions StallGuardOptions::from_env() {
  StallGuardOptions opt;
  if (const char* v = std::getenv("BST_STALL_MS"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != v) opt.stall_ms = static_cast<std::uint64_t>(n);
  }
  if (const char* v = std::getenv("BST_STALL_FATAL"); v != nullptr) {
    opt.fatal = (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0);
  }
  return opt;
}

int StallGuard::register_self(const char* label) {
  if (tl_guard.slot >= 0) return tl_guard.slot;
  const std::uint32_t fr_tid = FlightRecorder::current_tid();
  std::lock_guard lock(g_mu);
  for (int s = 0; s < kMaxThreads; ++s) {
    if (g_slots[s].used) continue;
    Slot& sl = g_slots[s];
    sl.used = true;
    sl.fr_tid = fr_tid;
    std::snprintf(sl.label, sizeof sl.label, "%s", label != nullptr ? label : "");
    sl.flagged.store(false, std::memory_order_relaxed);
    sl.beat_ns.store(TraceClock::now_ns(), std::memory_order_relaxed);
    sl.busy.store(true, std::memory_order_relaxed);
    tl_guard.slot = s;
    return s;
  }
  g_slot_overflow.fetch_add(1, std::memory_order_relaxed);
  return -1;
}

void StallGuard::beat() noexcept {
  const int s = tl_guard.slot;
  if (s < 0) return;
  g_slots[s].beat_ns.store(TraceClock::now_ns(), std::memory_order_relaxed);
  g_slots[s].busy.store(true, std::memory_order_relaxed);
}

void StallGuard::idle() noexcept {
  const int s = tl_guard.slot;
  if (s < 0) return;
  g_slots[s].busy.store(false, std::memory_order_relaxed);
}

std::uint64_t StallGuard::scan_once(const StallGuardOptions& opt) {
  const std::uint64_t now = TraceClock::now_ns();
  const std::uint64_t limit_ns = opt.stall_ms * 1'000'000ull;
  std::uint64_t newly = 0;
  std::lock_guard lock(g_mu);
  for (int s = 0; s < kMaxThreads; ++s) {
    Slot& sl = g_slots[s];
    if (!sl.used) continue;
    if (!sl.busy.load(std::memory_order_relaxed)) {
      if (sl.flagged.exchange(false, std::memory_order_relaxed)) {
        Metrics::gauge_add(stalled_gauge(), -1);
      }
      continue;
    }
    const std::uint64_t beat = sl.beat_ns.load(std::memory_order_relaxed);
    const std::uint64_t age_ns = now > beat ? now - beat : 0;
    if (age_ns >= limit_ns) {
      if (!sl.flagged.exchange(true, std::memory_order_relaxed)) {
        ++newly;
        Metrics::add(stalls_ctr());
        Metrics::gauge_add(stalled_gauge(), 1);
        const double age_ms = static_cast<double>(age_ns) / 1e6;
        Watchdog::warn("thread_stall", 0, age_ms, static_cast<double>(opt.stall_ms));
        const std::string span = FlightRecorder::open_span_name(sl.fr_tid);
        std::fprintf(stderr,
                     "[bst_stallguard] thread '%s' stalled: no heartbeat for %.0f ms "
                     "(limit %llu ms); open span: %s\n",
                     sl.label, age_ms, static_cast<unsigned long long>(opt.stall_ms),
                     span.empty() ? "(none)" : span.c_str());
        if (opt.fatal) {
          Crashbox::dump(0, "stall");
          std::abort();
        }
      }
    } else if (sl.flagged.exchange(false, std::memory_order_relaxed)) {
      Metrics::gauge_add(stalled_gauge(), -1);
      std::fprintf(stderr, "[bst_stallguard] thread '%s' recovered\n", sl.label);
    }
  }
  return newly;
}

void StallGuard::start(const StallGuardOptions& opt) {
  if (opt.stall_ms == 0) return;
  Monitor& m = monitor();
  std::lock_guard lock(m.mu);
  if (m.running) return;
  m.opt = opt;
  m.stop_requested = false;
  m.running = true;
  m.th = std::thread([&m] {
    const std::uint64_t poll = effective_poll_ms(m.opt);
    std::unique_lock lk(m.mu);
    while (!m.stop_requested) {
      m.cv.wait_for(lk, std::chrono::milliseconds(poll),
                    [&m] { return m.stop_requested; });
      if (m.stop_requested) break;
      const StallGuardOptions opt_copy = m.opt;
      lk.unlock();
      scan_once(opt_copy);
      lk.lock();
    }
  });
}

void StallGuard::start_from_env() { start(StallGuardOptions::from_env()); }

void StallGuard::stop() {
  Monitor& m = monitor();
  std::thread th;
  {
    std::lock_guard lock(m.mu);
    if (!m.running) return;
    m.stop_requested = true;
    th = std::move(m.th);
    m.running = false;
  }
  m.cv.notify_all();
  if (th.joinable()) th.join();
}

bool StallGuard::running() {
  Monitor& m = monitor();
  std::lock_guard lock(m.mu);
  return m.running;
}

std::uint64_t StallGuard::stalls_detected() noexcept {
  return Metrics::counter_value(stalls_ctr());
}

}  // namespace bst::util
