#include "util/rng.h"

#include <cmath>

namespace bst::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guards against poor user seeds (e.g. 0).
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  return n == 0 ? 0 : next() % n;
}

}  // namespace bst::util
