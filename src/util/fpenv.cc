#include "util/fpenv.h"

#if defined(__SSE2__) || defined(__x86_64__)
#include <xmmintrin.h>
#define BST_HAVE_MXCSR 1
#endif

namespace bst::util {

void enable_flush_to_zero() noexcept {
#ifdef BST_HAVE_MXCSR
  // Bit 15: flush-to-zero, bit 6: denormals-are-zero.
  _mm_setcsr(_mm_getcsr() | 0x8040u);
#endif
}

}  // namespace bst::util
