#include "util/fpenv.h"

#if defined(__SSE2__) || defined(__x86_64__)
#include <xmmintrin.h>
#define BST_HAVE_MXCSR 1
#endif

#if defined(__GLIBC__)
#define BST_HAVE_FE_TRAPS 1
#endif

namespace bst::util {

void enable_flush_to_zero() noexcept {
#ifdef BST_HAVE_MXCSR
  // Bit 15: flush-to-zero, bit 6: denormals-are-zero.
  _mm_setcsr(_mm_getcsr() | 0x8040u);
#endif
}

FpTrapScope::FpTrapScope(int excepts) noexcept {
#ifdef BST_HAVE_FE_TRAPS
  prev_mask_ = fegetexcept();
  if (prev_mask_ >= 0) {
    std::feclearexcept(excepts);
    feenableexcept(excepts);
  }
#else
  (void)excepts;
#endif
}

FpTrapScope::~FpTrapScope() {
#ifdef BST_HAVE_FE_TRAPS
  if (prev_mask_ < 0) return;
  const int now = fegetexcept();
  if (now < 0) return;
  // Restore the saved mask exactly, whichever direction it moved: traps
  // this scope added come down, traps something disarmed underneath us
  // (e.g. a nested scope's sloppy teardown) come back up.
  if (const int extra = now & ~prev_mask_; extra != 0) fedisableexcept(extra);
  if (const int missing = prev_mask_ & ~now; missing != 0) feenableexcept(missing);
#endif
}

bool FpTrapScope::supported() noexcept {
#ifdef BST_HAVE_FE_TRAPS
  return fegetexcept() >= 0;
#else
  return false;
#endif
}

int FpTrapScope::enabled_traps() noexcept {
#ifdef BST_HAVE_FE_TRAPS
  return fegetexcept();
#else
  return -1;
#endif
}

}  // namespace bst::util
