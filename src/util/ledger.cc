#include "util/ledger.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <stdexcept>

namespace bst::util {

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec);
  return buf;
}

std::string build_git_revision() {
#if defined(BST_GIT_DESCRIBE)
  return BST_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

Json ledger_entry(const Json& report_doc) {
  Json e = Json::object();
  e.set("utc", Json::string(utc_timestamp()));
  e.set("git", Json::string(build_git_revision()));
  if (const Json* tool = report_doc.find("tool"); tool != nullptr) e.set("tool", *tool);
  if (const Json* params = report_doc.find("params"); params != nullptr) {
    e.set("params_hash", Json::string(fnv1a_hex(params->dump_compact())));
    e.set("params", *params);
  } else {
    e.set("params_hash", Json::string(fnv1a_hex("{}")));
  }
  if (const Json* machine = report_doc.find("machine"); machine != nullptr) {
    if (const Json* fp = machine->find("fingerprint");
        fp != nullptr && fp->kind() == Json::Kind::String) {
      e.set("machine", *fp);
    }
  }
  if (const Json* phases = report_doc.find("phases"); phases != nullptr) {
    Json out = Json::object();
    for (const auto& [name, ph] : phases->members()) {
      const Json* sec = ph.find("seconds");
      if (sec != nullptr && sec->kind() == Json::Kind::Number) out.set(name, *sec);
    }
    if (!out.members().empty()) e.set("phases", std::move(out));
  }
  // Per-phase attainment columns so --trend can gate on efficiency, not
  // just seconds (a phase can stay fast while its attainment collapses,
  // e.g. a flop-count regression masked by a faster machine).
  if (const Json* att = report_doc.find("attainment"); att != nullptr) {
    if (const Json* aphases = att->find("phases"); aphases != nullptr) {
      Json out = Json::object();
      for (const auto& [name, row] : aphases->members()) {
        const Json* a = row.find("attainment");
        if (a != nullptr && a->kind() == Json::Kind::Number) out.set(name, *a);
      }
      if (!out.members().empty()) e.set("attainment", std::move(out));
    }
  }
  if (const Json* metrics = report_doc.find("metrics"); metrics != nullptr) {
    e.set("metrics", *metrics);
  }
  // Hardware-truth columns (util/prof): run-level measured IPC and LLC
  // miss rate, summed over the report's per-phase PMU deltas.  Omitted
  // entirely when the PMU was unavailable -- trend readers skip absent
  // keys, so pre-PMU ledger lines and no-perf containers stay comparable.
  if (const Json* phases = report_doc.find("phases"); phases != nullptr) {
    auto num = [](const Json& obj, const char* key) {
      const Json* v = obj.find(key);
      return (v != nullptr && v->kind() == Json::Kind::Number) ? v->as_number() : 0.0;
    };
    double cycles = 0.0, instructions = 0.0, llc_loads = 0.0, llc_misses = 0.0;
    for (const auto& [name, ph] : phases->members()) {
      (void)name;
      cycles += num(ph, "cycles");
      instructions += num(ph, "instructions");
      llc_loads += num(ph, "llc_loads");
      llc_misses += num(ph, "llc_misses");
    }
    Json pmu = Json::object();
    if (cycles > 0.0 && instructions > 0.0) {
      pmu.set("ipc", Json::number(instructions / cycles));
    }
    if (llc_loads > 0.0) pmu.set("llc_miss_rate", Json::number(llc_misses / llc_loads));
    if (!pmu.members().empty()) e.set("pmu", std::move(pmu));
  }
  // Event counters (cache hits/misses, admissions...) ride along so a
  // trend reader can plot e.g. hit rates over time; never gated (counts
  // are workload-denominated, not time-denominated).
  if (const Json* counters = report_doc.find("counters"); counters != nullptr) {
    e.set("counters", *counters);
  }
  std::uint64_t warnings = 0;
  if (const Json* w = report_doc.find("warnings"); w != nullptr) warnings += w->items().size();
  if (const Json* d = report_doc.find("warnings_dropped");
      d != nullptr && d->kind() == Json::Kind::Number) {
    warnings += static_cast<std::uint64_t>(d->as_number());
  }
  e.set("warnings", Json::number(warnings));
  return e;
}

void append_ledger(const std::string& path, const Json& report_doc) {
  std::ofstream f(path, std::ios::app);
  if (!f) throw std::runtime_error("ledger: cannot open '" + path + "' for appending");
  ledger_entry(report_doc).write_compact(f);
  f << '\n';
}

std::vector<Json> read_ledger(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("ledger: cannot open '" + path + "'");
  std::vector<Json> out;
  std::string line;
  while (std::getline(f, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      Json e = parse_json(line);
      if (e.kind() == Json::Kind::Object) out.push_back(std::move(e));
    } catch (const std::exception&) {
      // Corrupt lines (interrupted appends) must not poison the history.
    }
  }
  return out;
}

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void collect_keys(const std::vector<const Json*>& entries, const char* section,
                  std::vector<std::string>& keys) {
  for (const Json* ep : entries) {
    const Json* obj = ep->find(section);
    if (obj == nullptr) continue;
    for (const auto& [k, v] : obj->members()) {
      if (v.kind() != Json::Kind::Number) continue;
      const std::string key = std::string(section) + "." + k;
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) keys.push_back(key);
    }
  }
}

}  // namespace

TrendReport ledger_trend(const std::vector<Json>& entries, double max_regress,
                         double min_seconds) {
  TrendReport rep;
  if (entries.empty()) return rep;

  // Cross-machine guard: compare only against history from the machine of
  // the newest entry.  Entries predating the fingerprint field (no
  // "machine" key) match anything so old ledgers keep their history.
  std::string ref_machine;
  if (const Json* m = entries.back().find("machine");
      m != nullptr && m->kind() == Json::Kind::String) {
    ref_machine = m->as_string();
  }
  // Same-solver guard: "phases.pcg" seconds and "phases.reflector_apply"
  // seconds belong to different algorithms; comparing a PCG run against a
  // Schur history (or vice versa) would flag phantom regressions.  Entries
  // predating the field (no params.solver_path) match anything.
  auto solver_path_of = [](const Json& e) -> std::string {
    const Json* params = e.find("params");
    const Json* sp = params != nullptr ? params->find("solver_path") : nullptr;
    return (sp != nullptr && sp->kind() == Json::Kind::String) ? sp->as_string() : "";
  };
  const std::string ref_path = solver_path_of(entries.back());
  std::vector<const Json*> comparable;
  for (const Json& e : entries) {
    const Json* m = e.find("machine");
    if (!ref_machine.empty() && m != nullptr && m->kind() == Json::Kind::String &&
        m->as_string() != ref_machine) {
      ++rep.skipped_machines;
      continue;
    }
    if (const std::string p = solver_path_of(e); !ref_path.empty() && !p.empty() &&
                                                 p != ref_path) {
      ++rep.skipped_paths;
      continue;
    }
    comparable.push_back(&e);
  }

  std::vector<std::string> keys;
  collect_keys(comparable, "phases", keys);
  collect_keys(comparable, "metrics", keys);
  collect_keys(comparable, "attainment", keys);
  // "pmu" series are informational (not gated below): entries that predate
  // the hardware-truth columns, or ran where perf was denied, simply lack
  // the key and drop out of the series instead of failing the trend.
  collect_keys(comparable, "pmu", keys);
  std::sort(keys.begin(), keys.end());

  for (const std::string& key : keys) {
    const std::size_t dot = key.find('.');
    const std::string section = key.substr(0, dot), name = key.substr(dot + 1);
    TrendStat st;
    st.key = key;
    for (const Json* e : comparable) {
      const Json* obj = e->find(section);
      const Json* v = obj != nullptr ? obj->find(name) : nullptr;
      if (v != nullptr && v->kind() == Json::Kind::Number) st.values.push_back(v->as_number());
    }
    if (st.values.empty()) continue;
    st.min = *std::min_element(st.values.begin(), st.values.end());
    st.median = median_of(st.values);
    st.last = st.values.back();
    st.baseline = st.values.size() > 1
                      ? median_of({st.values.begin(), st.values.end() - 1})
                      : st.last;
    st.rel = st.baseline > 0.0 ? (st.last - st.baseline) / st.baseline : 0.0;
    // Only time-denominated and attainment series can *fail* the gate;
    // counters and residuals are informational (a residual rising is a
    // watchdog matter, not a perf regression).
    st.higher_is_better = section == "attainment";
    st.gated = section == "phases" || section == "attainment" || key == "metrics.time_s" ||
               key == "metrics.sim_seconds";
    if (st.gated && st.values.size() > 1) rep.insufficient_history = false;
    if (st.higher_is_better) {
      // Attainment is a fraction; the seconds noise floor does not apply.
      st.regressed = st.gated && max_regress >= 0.0 && st.values.size() > 1 &&
                     st.baseline > 0.0 && st.rel < -max_regress;
    } else {
      st.regressed = st.gated && max_regress >= 0.0 && st.values.size() > 1 &&
                     st.baseline >= min_seconds && st.rel > max_regress;
    }
    if (st.regressed) ++rep.regressions;
    rep.series.push_back(std::move(st));
  }
  return rep;
}

}  // namespace bst::util
