// Umbrella header for the block Schur Toeplitz library.
//
// Public API tour:
//   toeplitz::BlockToeplitz      -- problem description (first block row)
//   core::block_schur_factor     -- SPD factorization T = R^T R
//   core::block_schur_indefinite -- indefinite / singular-minor extension,
//                                   T + dT = R^T D R
//   core::solve_spd / solve_ldl  -- triangular solves on the factors
//   core::solve_refined          -- iterative refinement driver
//   simnet::dist_schur_factor    -- distributed-memory simulation (T3D)
//   baseline::*                  -- Levinson / classical Schur / dense
//   service::Service             -- batched factor-once/solve-many service
//                                   (factor cache, async queue, docs/SERVICE.md)
//   util::Tracer / TraceSpan     -- structured phase tracing (docs/OBSERVABILITY.md)
//   util::FlightRecorder         -- per-thread event timeline (chrome trace)
//   util::Metrics                -- histograms, counters, and live gauges
//   util::TelemetryExporter      -- periodic Prometheus/JSONL telemetry
//   util::Watchdog               -- numerical-health warnings
//   util::Crashbox               -- async-signal-safe crash reports (post-mortem)
//   util::StallGuard             -- heartbeat-based hang detection
//   util::Fault                  -- BST_FAULT injection seam (testing only)
//   util::read_crash_report      -- crash-report decoder (tools/bst_postmortem)
//   util::PerfReport             -- JSON perf-report writer (stable schema)
//   util::Calibration            -- machine ceilings for roofline/attainment
#pragma once

#include "baseline/classic_schur.h"
#include "baseline/dense_solver.h"
#include "baseline/block_levinson.h"
#include "baseline/levinson.h"
#include "core/block_reflector.h"
#include "core/flop_model.h"
#include "core/generator.h"
#include "core/hyperbolic.h"
#include "core/indefinite.h"
#include "core/refine.h"
#include "core/schur.h"
#include "core/solve.h"
#include "core/solver.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/condest.h"
#include "la/ldlt.h"
#include "la/matrix.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "service/cache.h"
#include "service/service.h"
#include "simnet/dist_schur.h"
#include "simnet/machine.h"
#include "simnet/runtime.h"
#include "simnet/threaded_schur.h"
#include "toeplitz/block_toeplitz.h"
#include "toeplitz/fft.h"
#include "toeplitz/generators.h"
#include "toeplitz/io.h"
#include "toeplitz/matvec.h"
#include "util/attainment.h"
#include "util/calibrate.h"
#include "util/cli.h"
#include "util/crashbox.h"
#include "util/fault.h"
#include "util/flight_recorder.h"
#include "util/flops.h"
#include "util/fpenv.h"
#include "util/ledger.h"
#include "util/metrics.h"
#include "util/par_analysis.h"
#include "util/postmortem.h"
#include "util/prof.h"
#include "util/report.h"
#include "util/rng.h"
#include "util/stallguard.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/watchdog.h"
