// Quickstart: factor and solve a symmetric positive definite block
// Toeplitz system with the block Schur algorithm.
//
//   build/examples/quickstart
//
// Walks through the three core calls:
//   1. describe the matrix by its first block row (BlockToeplitz),
//   2. factor it, T = R^T R, in O(m n^2) flops (block_schur_factor),
//   3. solve T x = b through the factor (solve_spd).
#include <cmath>
#include <cstdio>

#include "bst.h"

using namespace bst;

int main() {
  // A 240 x 240 SPD block Toeplitz matrix with 3 x 3 blocks (p = 80 block
  // columns), generated as the autocovariance of a 3-channel moving-average
  // process -- the kind of matrix multichannel signal processing produces.
  const la::index_t m = 3, p = 80;
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(m, p, /*ma_order=*/4, /*seed=*/2024);
  std::printf("matrix: n = %td, block size m = %td, %td block columns\n", t.order(),
              t.block_size(), t.num_blocks());

  // Factor T = R^T R.  The options select the second VY representation of
  // the block hyperbolic Householder reflectors -- the cheapest to apply.
  core::SchurOptions opt;
  opt.rep = core::Representation::VY2;
  core::SchurFactor f = core::block_schur_factor(t, opt);
  std::printf("factored with %llu flops (dense Cholesky would need ~%.0f)\n",
              static_cast<unsigned long long>(f.flops),
              std::pow(static_cast<double>(t.order()), 3) / 3.0);

  // Solve T x = b for a right-hand side with known solution x = ones.
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = core::solve_spd(f, b);

  double max_err = 0.0;
  for (double v : x) max_err = std::max(max_err, std::fabs(v - 1.0));
  std::printf("solve: max |x_i - 1| = %.3e\n", max_err);

  // The factor is reusable: solve for a second right-hand side at O(n^2).
  std::vector<double> b2(b.size(), 1.0);
  std::vector<double> x2 = core::solve_spd(f, b2);
  std::vector<double> check;
  toeplitz::MatVec(t).apply(x2, check);
  double max_res = 0.0;
  for (std::size_t i = 0; i < b2.size(); ++i)
    max_res = std::max(max_res, std::fabs(check[i] - b2[i]));
  std::printf("second rhs: max |T x - b| = %.3e\n", max_res);

  // Treating the same matrix with a larger working block size trades flops
  // for level-3 locality (the paper's m_s device).
  core::SchurOptions wide;
  wide.block_size = 12;  // multiple of m = 3
  core::SchurFactor f12 = core::block_schur_factor(t, wide);
  std::printf("with m_s = 12: %llu flops (~linear growth in m_s)\n",
              static_cast<unsigned long long>(f12.flops));
  return 0;
}
