// Using the distributed-memory simulator to pick a data distribution
// scheme before committing to one on a real machine (paper section 7).
//
// Sweeps the three layouts (V1 block-cyclic, V2 grouped, V3 split) for a
// user-chosen problem, validates one configuration against the sequential
// factorization, and prints the time breakdown of the winner.
#include <cstdio>

#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const la::index_t m = cli.get_int("m", 8);
  const la::index_t p = cli.get_int("p", 256);
  const int np = static_cast<int>(cli.get_int("np", 32));

  std::printf("problem: %td x %td block Toeplitz (m = %td), machine: %d PEs (T3D model)\n",
              m * p, m * p, m, np);

  // 1. Sweep candidate layouts with the cost model (no numerics needed).
  struct Candidate {
    simnet::DistOptions opt;
    const char* label;
  };
  std::vector<Candidate> cands;
  {
    simnet::DistOptions o;
    o.np = np;
    cands.push_back({o, "V1 cyclic"});
  }
  for (la::index_t b : {2, 4, 8}) {
    simnet::DistOptions o;
    o.np = np;
    o.layout = simnet::Layout::V2;
    o.group = b;
    cands.push_back({o, "V2 grouped"});
  }
  for (la::index_t s : {2, 4}) {
    simnet::DistOptions o;
    o.np = np;
    o.layout = simnet::Layout::V3;
    o.spread = s;
    cands.push_back({o, "V3 split"});
  }

  std::printf("%-12s %-8s %-8s %10s %10s %10s %10s\n", "layout", "group", "spread", "total(s)",
              "compute", "shift", "idle");
  const Candidate* best = nullptr;
  double best_time = 1e300;
  for (const auto& c : cands) {
    simnet::DistResult r = simnet::dist_schur_model(m, p, c.opt);
    std::printf("%-12s %-8td %-8td %10.4f %10.4f %10.4f %10.4f\n", c.label, c.opt.group,
                c.opt.spread, r.sim_seconds, r.breakdown.compute / np, r.breakdown.shift / np,
                r.breakdown.barrier / np);
    if (r.sim_seconds < best_time) {
      best_time = r.sim_seconds;
      best = &c;
    }
  }
  std::printf("model pick: %s (%.4f simulated seconds)\n", best->label, best_time);

  // 2. Validate the distributed implementation numerically on a smaller
  //    instance of the same shape (V1/V2 run the real factorization on
  //    distributed per-PE storage).
  simnet::DistOptions vopt = best->opt;
  if (vopt.layout == simnet::Layout::V3) vopt = cands[0].opt;  // V3 is model-only
  const la::index_t pv = std::min<la::index_t>(p, 24);
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(m, pv, 2, 7);
  simnet::DistResult dist = simnet::dist_schur_factor(t, vopt, /*want_factor=*/true);
  core::SchurFactor seq = core::block_schur_factor(t);
  const double diff = la::max_diff(dist.r->view(), seq.r.view());
  std::printf("validation on %td x %td: max |R_dist - R_seq| = %.3e\n", t.order(), t.order(),
              diff);
  return 0;
}
