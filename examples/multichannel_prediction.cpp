// Multichannel linear prediction -- the workload that motivates block
// Toeplitz solvers in signal processing.
//
// An m-channel stationary process y_t is modeled as a vector AR(q) process
//   y_t = A_1 y_{t-1} + ... + A_q y_{t-q} + e_t .
// The normal equations for the predictor coefficients are a symmetric
// positive definite *block Toeplitz* system built from the autocovariance
// sequence C_k = E[y_t y_{t-k}^T]:
//
//   [ C_0   C_1^T  ...         ] [A_1^T]   [C_1]
//   [ C_1   C_0    ...         ] [A_2^T] = [C_2]
//   [ ...                      ] [ ... ]   [...]
//
// This example synthesizes a 3-channel AR(2) process, estimates the sample
// autocovariances, solves the block normal equations with the block Schur
// factorization, and compares the recovered coefficients with the truth.
//
// The per-channel solves go through bst::service::Service (docs/SERVICE.md):
// channel 0 pays the factorization (a cache miss), channels 1..m-1 reuse the
// cached factor (hits) -- the service prints its hit rate at the end.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bst.h"

using namespace bst;

namespace {

// Multiply an m x m coefficient into a channel vector.
void matvec_into(const la::Mat& a, const double* x, double* y) {
  for (la::index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (la::index_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] += s;
  }
}

}  // namespace

int main() {
  const la::index_t m = 3;   // channels
  const la::index_t q = 2;   // true AR order
  const la::index_t lags = 6;  // model order used by the predictor
  const std::size_t samples = 200000;

  // Stable AR(2) coefficients: modest spectral radius.
  la::Mat a1{{0.40, 0.10, 0.00}, {-0.10, 0.30, 0.05}, {0.00, 0.08, 0.25}};
  la::Mat a2{{-0.20, 0.00, 0.05}, {0.05, -0.15, 0.00}, {0.00, 0.05, -0.10}};

  // Simulate the process.
  util::Rng rng(99);
  std::vector<std::vector<double>> y(samples, std::vector<double>(m, 0.0));
  for (std::size_t t = 2; t < samples; ++t) {
    for (la::index_t c = 0; c < m; ++c) y[t][static_cast<std::size_t>(c)] = rng.normal();
    matvec_into(a1, y[t - 1].data(), y[t].data());
    matvec_into(a2, y[t - 2].data(), y[t].data());
  }

  // Sample autocovariances C_k, k = 0..lags.
  std::vector<la::Mat> c(static_cast<std::size_t>(lags) + 1, la::Mat(m, m));
  const std::size_t burn = 1000;
  for (la::index_t k = 0; k <= lags; ++k) {
    la::Mat& ck = c[static_cast<std::size_t>(k)];
    for (std::size_t t = burn; t + static_cast<std::size_t>(k) < samples; ++t) {
      for (la::index_t i = 0; i < m; ++i)
        for (la::index_t j = 0; j < m; ++j)
          ck(i, j) += y[t + static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
                      y[t][static_cast<std::size_t>(j)];
    }
    const double norm = static_cast<double>(samples - burn - static_cast<std::size_t>(k));
    for (la::index_t i = 0; i < m; ++i)
      for (la::index_t j = 0; j < m; ++j) ck(i, j) /= norm;
  }
  // Exact symmetry of C_0 (sample estimate is symmetric only in expectation).
  for (la::index_t i = 0; i < m; ++i)
    for (la::index_t j = 0; j < i; ++j) {
      const double s = 0.5 * (c[0](i, j) + c[0](j, i));
      c[0](i, j) = c[0](j, i) = s;
    }

  // Block Toeplitz normal equations: T(l, k) = C_{k-l} = E[y_{t-l} y_{t-k}^T],
  // so the first block row is [C_0 C_1 C_2 ...].
  la::Mat first_row(m, m * lags);
  for (la::index_t k = 0; k < lags; ++k) {
    for (la::index_t i = 0; i < m; ++i)
      for (la::index_t j = 0; j < m; ++j) {
        first_row(i, k * m + j) = c[static_cast<std::size_t>(k)](i, j);
      }
  }
  toeplitz::BlockToeplitz t_mat(m, std::move(first_row));

  service::Service svc;

  // Solve for each predictor column: the rhs for channel i stacks
  // C_1(i,:) ... C_lags(i,:) -- i.e. column i of [C_1; ...; C_lags]^T.
  // We recover X = [A_1^T; A_2^T; ...] column by column.
  std::vector<la::Mat> coef(static_cast<std::size_t>(lags), la::Mat(m, m));
  std::uint64_t factor_flops = 0;
  for (la::index_t i = 0; i < m; ++i) {
    std::vector<double> rhs(static_cast<std::size_t>(m * lags));
    for (la::index_t k = 1; k <= lags; ++k)
      for (la::index_t j = 0; j < m; ++j)
        rhs[static_cast<std::size_t>((k - 1) * m + j)] = c[static_cast<std::size_t>(k)](i, j);
    service::SolveResult res = svc.solve(t_mat, rhs);
    factor_flops = res.factor_flops;
    for (la::index_t k = 0; k < lags; ++k)
      for (la::index_t j = 0; j < m; ++j)
        coef[static_cast<std::size_t>(k)](i, j) = res.x[static_cast<std::size_t>(k * m + j)];
  }
  std::printf("normal equations: n = %td (m = %td, %td lags), factored with %llu flops\n",
              t_mat.order(), m, lags, static_cast<unsigned long long>(factor_flops));

  auto report = [&](const char* name, const la::Mat& truth, const la::Mat& est) {
    double err = 0.0;
    for (la::index_t i = 0; i < m; ++i)
      for (la::index_t j = 0; j < m; ++j) err = std::max(err, std::fabs(truth(i, j) - est(i, j)));
    std::printf("  %s: max |error| = %.4f\n", name, err);
  };
  std::printf("recovered AR coefficients vs truth:\n");
  report("A_1", a1, coef[0]);
  report("A_2", a2, coef[1]);
  double tail = 0.0;
  for (la::index_t k = q; k < lags; ++k) tail = std::max(tail, la::max_abs(coef[static_cast<std::size_t>(k)].view()));
  std::printf("  A_3..A_%td (true zeros): max |coef| = %.4f\n", lags, tail);

  std::printf("A_1 estimated:\n");
  for (la::index_t i = 0; i < m; ++i) {
    std::printf("   ");
    for (la::index_t j = 0; j < m; ++j) std::printf(" % .4f", coef[0](i, j));
    std::printf("\n");
  }
  const service::ServiceStats stats = svc.stats();
  std::printf("service cache: %llu hits / %llu misses (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              100.0 * stats.cache.hit_rate());
  return 0;
}
