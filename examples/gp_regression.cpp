// Gaussian process regression on a regular grid -- large SPD Toeplitz
// systems from stationary kernels.
//
// For a stationary kernel k(.) on a regular 1-D grid, the covariance matrix
// K = [k(|i-j| h)] is symmetric Toeplitz, so the GP posterior mean
//   mu = K_* (K + sigma^2 I)^{-1} y
// needs exactly the solver this library provides: one factorization of
// (K + sigma^2 I), reused for every prediction weight.  This example fits a
// noisy function with a Matern-3/2 kernel, reports the training fit and the
// estimated condition number of the system.
//
// The solves go through bst::service::Service (docs/SERVICE.md): the weight
// solve pays the one factorization (a cache miss), and every condition-
// estimate solve afterwards reuses the cached factor (hits) -- the service
// prints its hit rate at the end.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bst.h"

using namespace bst;

namespace {

double matern32(double d, double ell) {
  const double s = std::sqrt(3.0) * d / ell;
  return (1.0 + s) * std::exp(-s);
}

double truth(double x) { return std::sin(3.0 * x) + 0.5 * std::sin(11.0 * x); }

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 512);
  const double h = 4.0 / static_cast<double>(n);  // grid spacing on [0, 4)
  const double ell = cli.get_double("ell", 0.25);
  const double sigma = cli.get_double("sigma", 0.1);

  // Training data: noisy samples of the truth on the grid.
  util::Rng rng(31);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (la::index_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = truth(h * static_cast<double>(i)) + sigma * rng.normal();
  }

  // K + sigma^2 I as a Toeplitz first row.
  std::vector<double> row(static_cast<std::size_t>(n));
  for (la::index_t k = 0; k < n; ++k) row[static_cast<std::size_t>(k)] = matern32(h * k, ell);
  row[0] += sigma * sigma;
  toeplitz::BlockToeplitz kmat = toeplitz::BlockToeplitz::scalar(row);

  // Solve through the service: the first request factors (working block
  // size 8) and caches; everything below is a cache hit on that factor.
  service::ServiceOptions sopt = service::ServiceOptions::from_env();
  sopt.schur.block_size = cli.get_int("ms", 8);
  service::Service svc(sopt);
  const double t0 = util::wall_seconds();
  service::SolveResult weights = svc.solve(kmat, y);
  std::vector<double> alpha = std::move(weights.x);
  const double dt = util::wall_seconds() - t0;

  // Posterior mean on the training grid: mu = K alpha (without the noise
  // term).  Reuse the FFT Toeplitz operator for the product.
  row[0] -= sigma * sigma;
  toeplitz::BlockToeplitz kclean = toeplitz::BlockToeplitz::scalar(row);
  std::vector<double> mu;
  toeplitz::MatVec(kclean, toeplitz::MatVecMode::Fft).apply(alpha, mu);

  double rms_noisy = 0.0, rms_fit = 0.0;
  for (la::index_t i = 0; i < n; ++i) {
    const double t = truth(h * static_cast<double>(i));
    rms_noisy += (y[static_cast<std::size_t>(i)] - t) * (y[static_cast<std::size_t>(i)] - t);
    rms_fit += (mu[static_cast<std::size_t>(i)] - t) * (mu[static_cast<std::size_t>(i)] - t);
  }
  rms_noisy = std::sqrt(rms_noisy / n);
  rms_fit = std::sqrt(rms_fit / n);

  // Condition estimate through the factorization (Hager's method); every
  // probe solve hits the cached factor.
  auto solve = [&](const std::vector<double>& b, std::vector<double>& x) {
    x = svc.solve(kmat, b).x;
  };
  const double cond =
      la::condest1(n, la::norm1(kmat.dense().view()), solve, solve);

  std::printf("GP regression: n = %td, Matern-3/2 (ell = %.2f), noise sigma = %.2f\n", n, ell,
              sigma);
  std::printf("  factor+solve: %.2f ms (%llu flops, m_s = %td)\n", dt * 1e3,
              static_cast<unsigned long long>(weights.factor_flops), sopt.schur.block_size);
  std::printf("  cond_1(K + sigma^2 I) ~ %.2e\n", cond);
  std::printf("  rms error of noisy data vs truth: %.4f\n", rms_noisy);
  std::printf("  rms error of GP posterior mean:  %.4f\n", rms_fit);
  const service::ServiceStats stats = svc.stats();
  std::printf("  service cache: %llu hits / %llu misses (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              100.0 * stats.cache.hit_rate());
  return 0;
}
