// 1-D deconvolution with Tikhonov regularization -- a classic source of
// large SPD Toeplitz systems.
//
// A signal x is observed through a symmetric blur kernel h plus noise:
//   y = H x + e,   H Toeplitz.
// The regularized least-squares estimate solves the normal equations
//   (H^T H + lambda I) x = H^T y
// whose matrix is again symmetric positive definite Toeplitz (H^T H is the
// autocorrelation of the kernel).  We build it explicitly, factor it with
// the block Schur algorithm using a working block size m_s > 1 (the paper's
// device for point matrices), and compare restoration quality against the
// blurred input.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bst.h"

using namespace bst;

namespace {

// Symmetric convolution y = h * x (zero-padded), kernel given by half
// taps h[0..r] with h[-k] = h[k].
std::vector<double> convolve(const std::vector<double>& x, const std::vector<double>& h) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(h.size()) - 1;
  std::vector<double> y(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::ptrdiff_t k = -r; k <= r; ++k) {
      const std::ptrdiff_t j = i + k;
      if (j < 0 || j >= n) continue;
      s += h[static_cast<std::size_t>(std::abs(k))] * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = s;
  }
  return y;
}

double rms(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 1024);
  const double lambda = cli.get_double("lambda", 1e-3);
  const double noise = cli.get_double("noise", 1e-3);

  // Ground truth: a piecewise signal with steps and a ramp.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (la::index_t i = n / 8; i < 3 * n / 8; ++i) x[static_cast<std::size_t>(i)] = 1.0;
  for (la::index_t i = n / 2; i < 3 * n / 4; ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<double>(i - n / 2) / static_cast<double>(n / 4);
  }

  // Gaussian blur kernel, half taps (radius 6).
  std::vector<double> h;
  double hsum = 0.0;
  for (int k = 0; k <= 6; ++k) {
    h.push_back(std::exp(-0.5 * (k / 2.0) * (k / 2.0)));
    hsum += (k == 0 ? 1.0 : 2.0) * h.back();
  }
  for (double& v : h) v /= hsum;

  // Observation with noise.
  util::Rng rng(2025);
  std::vector<double> y = convolve(x, h);
  for (double& v : y) v += noise * rng.normal();

  // Normal-equation matrix: first row of H^T H is the kernel
  // autocorrelation a[d] = sum_k h[k] h[k+d] (h extended symmetrically).
  const int r = static_cast<int>(h.size()) - 1;
  auto tap = [&](int k) { return (std::abs(k) <= r) ? h[static_cast<std::size_t>(std::abs(k))] : 0.0; };
  std::vector<double> first_row(static_cast<std::size_t>(n), 0.0);
  for (int d = 0; d <= 2 * r && d < n; ++d) {
    double s = 0.0;
    for (int k = -r; k <= r; ++k) s += tap(k) * tap(k + d);
    first_row[static_cast<std::size_t>(d)] = s;
  }
  first_row[0] += lambda;
  toeplitz::BlockToeplitz t = toeplitz::BlockToeplitz::scalar(first_row);

  // Right-hand side H^T y = h * y (kernel symmetric).
  std::vector<double> rhs = convolve(y, h);

  // Factor with a working block size and solve.
  core::SchurOptions opt;
  opt.block_size = cli.get_int("ms", 8);
  const double t0 = util::wall_seconds();
  core::SchurFactor f = core::block_schur_factor(t, opt);
  std::vector<double> xhat = core::solve_spd(f, rhs);
  const double dt = util::wall_seconds() - t0;

  std::printf("deconvolution: n = %td, lambda = %g, noise sigma = %g\n", n, lambda, noise);
  std::printf("  factor+solve (m_s = %td): %.3f ms, %llu flops\n", f.block_size, dt * 1e3,
              static_cast<unsigned long long>(f.flops));
  std::printf("  rms error blurred observation vs truth: %.4f\n", rms(y, x));
  std::printf("  rms error restored signal   vs truth: %.4f\n", rms(xhat, x));

  // Cross-check against the Levinson baseline.
  std::vector<double> xlev = baseline::levinson_solve(first_row, rhs);
  std::printf("  max |x_schur - x_levinson| = %.3e\n",
              [&] {
                double m = 0.0;
                for (std::size_t i = 0; i < xhat.size(); ++i)
                  m = std::max(m, std::fabs(xhat[i] - xlev[i]));
                return m;
              }());
  return 0;
}
