// Autoregressive spectral estimation -- the classical application of
// Toeplitz solvers in signal processing.
//
// Fit an AR(q) model to a noisy two-sinusoid signal by solving the
// Yule-Walker equations (Durbin's algorithm on the sample autocorrelation),
// then evaluate the AR power spectral density
//   S(f) = sigma^2 / |1 + a_1 e^{-2pi i f} + ... + a_q e^{-2pi i q f}|^2
// and locate its peaks.  Cross-checks the Yule-Walker solution against the
// block Schur factorization of the same Toeplitz matrix.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::size_t nsamp = static_cast<std::size_t>(cli.get_int("samples", 4096));
  const la::index_t q = cli.get_int("order", 12);
  const double f1 = 0.12, f2 = 0.31;  // true tones (cycles/sample)

  // Two sinusoids in white noise.
  util::Rng rng(7);
  std::vector<double> y(nsamp);
  for (std::size_t t = 0; t < nsamp; ++t) {
    const double ft = static_cast<double>(t);
    y[t] = std::sin(2 * M_PI * f1 * ft) + 0.7 * std::sin(2 * M_PI * f2 * ft + 0.5) +
           0.5 * rng.normal();
  }

  // Sample autocorrelation r_0..r_q.
  std::vector<double> r(static_cast<std::size_t>(q) + 1, 0.0);
  for (la::index_t k = 0; k <= q; ++k) {
    double s = 0.0;
    for (std::size_t t = 0; t + static_cast<std::size_t>(k) < nsamp; ++t)
      s += y[t] * y[t + static_cast<std::size_t>(k)];
    r[static_cast<std::size_t>(k)] = s / static_cast<double>(nsamp);
  }

  // Yule-Walker via Durbin.
  baseline::DurbinResult dr = baseline::durbin(r);
  std::printf("AR(%td) fit of %zu samples: innovation variance %.4f\n", q, nsamp, dr.beta);
  std::printf("reflection coefficients:");
  for (double k : dr.reflection) std::printf(" %+.3f", k);
  std::printf("\n");

  // Cross-check: the same Yule-Walker system solved through the block
  // Schur factorization of T_q (first row r_0..r_{q-1}).
  {
    std::vector<double> row(r.begin(), r.begin() + q);
    toeplitz::BlockToeplitz tq = toeplitz::BlockToeplitz::scalar(row);
    std::vector<double> rhs(static_cast<std::size_t>(q));
    for (la::index_t i = 0; i < q; ++i) rhs[static_cast<std::size_t>(i)] = -r[static_cast<std::size_t>(i) + 1];
    core::SchurOptions opt;
    opt.block_size = (q % 3 == 0) ? 3 : 1;
    core::SchurFactor f = core::block_schur_factor(tq, opt);
    std::vector<double> a = core::solve_spd(f, rhs);
    double diff = 0.0;
    for (la::index_t i = 0; i < q; ++i)
      diff = std::max(diff, std::fabs(a[static_cast<std::size_t>(i)] -
                                      dr.y[static_cast<std::size_t>(i)]));
    std::printf("max |a_schur - a_durbin| = %.3e\n", diff);
  }

  // PSD evaluation and peak report.
  auto psd = [&](double f) {
    std::complex<double> den(1.0, 0.0);
    for (la::index_t k = 0; k < q; ++k) {
      den += dr.y[static_cast<std::size_t>(k)] *
             std::exp(std::complex<double>(0.0, -2.0 * M_PI * f * static_cast<double>(k + 1)));
    }
    return dr.beta / std::norm(den);
  };
  std::printf("AR spectrum peaks (scanning f in [0, 0.5)):\n");
  const int grid = 2000;
  double prev = psd(0.0), cur = psd(0.5 / grid);
  for (int i = 2; i < grid; ++i) {
    const double f = 0.5 * static_cast<double>(i) / grid;
    const double nxt = psd(f);
    if (cur > prev && cur > nxt && cur > 10.0) {
      std::printf("  f = %.4f  (true tones at %.2f and %.2f), S = %.1f\n",
                  0.5 * static_cast<double>(i - 1) / grid, f1, f2, cur);
    }
    prev = cur;
    cur = nxt;
  }
  return 0;
}
