// The paper's section 8 scenario end-to-end: solving a symmetric Toeplitz
// system whose leading principal minor is exactly singular.
//
// The Levinson recursion and the plain Schur algorithm both break down on
// such matrices.  The extended block Schur algorithm perturbs the offending
// generator pivot by delta ~ cbrt(eps), completes an exact factorization of
// the nearby matrix T + dT = R^T D R, and iterative refinement removes the
// O(delta) error in two or three steps.
#include <cmath>
#include <cstdio>

#include "bst.h"

using namespace bst;

int main() {
  // The paper's 6x6 example (eq. 50): the leading 2x2 minor [[1 1],[1 1]]
  // is singular.
  toeplitz::BlockToeplitz t = toeplitz::paper_example_6x6();
  std::printf("matrix: 6x6 symmetric Toeplitz, first row "
              "(1.0000 1.0000 0.5297 0.6711 0.0077 0.3834)\n");

  // 1. The classical approaches fail.
  std::vector<double> first_row(6);
  for (la::index_t j = 0; j < 6; ++j) first_row[static_cast<std::size_t>(j)] = t.entry(0, j);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  try {
    baseline::levinson_solve(first_row, b);
    std::printf("levinson: unexpectedly succeeded?!\n");
  } catch (const std::exception& e) {
    std::printf("levinson: breaks down (%s)\n", e.what());
  }
  try {
    core::IndefiniteOptions strict;
    strict.allow_perturbation = false;
    core::block_schur_indefinite(t, strict);
    std::printf("strict Schur: unexpectedly succeeded?!\n");
  } catch (const core::SingularMinor& e) {
    std::printf("strict Schur: singular minor detected at step %td (h = %.1e)\n", e.step,
                e.hnorm);
  }

  // 2. The extended algorithm perturbs and continues.
  core::IndefiniteOptions opt;
  opt.delta = 1e-5;  // cbrt(1e-16) as in the paper
  core::LdlFactor f = core::block_schur_indefinite(t, opt);
  for (const auto& e : f.perturbations) {
    std::printf("perturbed pivot at step %td: %.10f -> %.13f\n", e.step, e.old_pivot,
                e.new_pivot);
  }
  std::printf("factorization: %d row interchange(s), signature D = (", f.interchanges);
  for (double d : f.d) std::printf("%+.0f", d);
  std::printf(")\n");

  // 3. Iterative refinement recovers full accuracy (paper: 3.6e-5 ->
  //    7.0e-10 -> 1.6e-14).
  const std::vector<double> xtrue(6, 1.0);
  toeplitz::MatVec op(t);
  core::RefineResult res = core::solve_refined(
      op,
      [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = core::solve_ldl(f, rhs);
      },
      b);
  std::printf("refinement: converged=%s after %d step(s)\n", res.converged ? "yes" : "no",
              res.iterations);
  for (std::size_t i = 0; i < res.residual_norms.size(); ++i) {
    std::printf("  ||b - T x_%zu|| = %.4e\n", i + 1, res.residual_norms[i]);
  }
  double err = 0.0;
  for (std::size_t i = 0; i < 6; ++i) err = std::max(err, std::fabs(res.x[i] - 1.0));
  std::printf("final: max |x_i - 1| = %.3e (machine precision regime)\n", err);
  return 0;
}
